// Status / Result error-handling primitives (Arrow/RocksDB idiom).
//
// Recoverable errors cross module boundaries as `Status` or `Result<T>`
// values instead of exceptions. Fatal programming errors (out-of-bounds
// shapes, contract violations) abort via SGNN_CHECK.

#ifndef SGNN_TENSOR_STATUS_H_
#define SGNN_TENSOR_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace sgnn {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,     ///< Simulated accelerator OOM (see tensor/device.h).
  kNotFound,
  kFailedPrecondition,
  kIOError,
  kNotImplemented,
  kInternal,
  kNumericalError,     ///< NaN/Inf divergence detected by a run guard.
  kDeadlineExceeded,   ///< Per-run wall-clock deadline hit (cell TIMEOUT).
  kUnavailable,        ///< Overloaded: admission control shed the request.
                       ///< Retryable (runtime::RetryWithBackoff backs off on
                       ///< exactly this code); every other code is terminal.
};

/// A success-or-error value. Cheap to copy on the OK path.
///
/// The class-level [[nodiscard]] makes *every* function returning a Status
/// by value warn (and, with -Werror=unused-result, fail to compile) when the
/// caller drops it on the floor — a dropped OOM or fault-injection status
/// would otherwise silently corrupt a benchmark cell. `sgnn_lint`'s
/// discarded-status rule enforces the same contract on paths the compiler
/// does not see (see docs/LINT.md).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfMemory: return "OutOfMemory";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kNumericalError: return "NumericalError";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// A value-or-error union, in the spirit of arrow::Result<T>. Like Status,
/// the class itself is [[nodiscard]]: dropping a Result drops its error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit by design: `return value;` and `return SomeStatus();` are the
  /// API — both conversions are the whole point of a value-or-error union.
  Result(T value) : repr_(std::move(value)) {}
  Result(Status status) : repr_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  /// Returns the contained value; must only be called when ok().
  T& value() { return std::get<T>(repr_); }
  const T& value() const { return std::get<T>(repr_); }

  /// Moves the contained value out; must only be called when ok().
  T&& MoveValue() { return std::move(std::get<T>(repr_)); }

  /// Returns the contained value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace sgnn

/// Aborts with a message when `cond` is false. For contract violations only.
#define SGNN_CHECK(cond, msg)                                            \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "SGNN_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, msg);                                       \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define SGNN_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::sgnn::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

#define SGNN_STATUS_CONCAT_INNER_(a, b) a##b
#define SGNN_STATUS_CONCAT_(a, b) SGNN_STATUS_CONCAT_INNER_(a, b)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its Status
/// to the caller, otherwise move-assigns the value into `lhs`. `lhs` may be
/// a declaration ("auto g, LoadGraph(p)") or an existing lvalue.
#define SGNN_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  SGNN_ASSIGN_OR_RETURN_IMPL_(                                        \
      SGNN_STATUS_CONCAT_(_sgnn_result_, __COUNTER__), lhs, rexpr)

#define SGNN_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                \
  if (!result.ok()) return result.status();             \
  lhs = result.MoveValue()

/// Aborts with the status message when `expr` (a Status or Result<T>
/// expression) is not OK. For tests, benches, and tool main()s whose callers
/// cannot propagate a Status — library code uses SGNN_RETURN_IF_ERROR
/// instead. Evaluates `expr` exactly once.
#define SGNN_CHECK_OK(expr)                                               \
  do {                                                                    \
    const auto& _sgnn_ok_ref = (expr);                                    \
    if (!_sgnn_ok_ref.ok()) {                                             \
      std::fprintf(stderr, "SGNN_CHECK_OK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__,                                    \
                   ::sgnn::internal::StatusOf(_sgnn_ok_ref)               \
                       .ToString()                                        \
                       .c_str());                                         \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

namespace sgnn::internal {
/// Uniform Status access for SGNN_CHECK_OK: works for both Status (which is
/// its own status) and Result<T> (which carries one).
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
inline const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
}  // namespace sgnn::internal

#endif  // SGNN_TENSOR_STATUS_H_

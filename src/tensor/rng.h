// Deterministic pseudo-random number generation.
//
// All experiments run with explicit seeds so paper-style "10 runs with
// different random seeds" evaluations are reproducible bit-for-bit.

#ifndef SGNN_TENSOR_RNG_H_
#define SGNN_TENSOR_RNG_H_

#include <cstdint>

namespace sgnn {

/// xoshiro256** generator seeded via SplitMix64. Fast, high-quality,
/// deterministic across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  /// Seeds the four-word state from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached second draw).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Forks an independent stream (useful for per-worker determinism).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sgnn

#endif  // SGNN_TENSOR_RNG_H_

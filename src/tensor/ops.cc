#include "tensor/ops.h"

#include <cmath>
#include <cstring>

#include "tensor/parallel.h"

namespace sgnn::ops {

namespace {

/// Elements per chunk for O(1)-per-element kernels (axpy, add, relu, ...):
/// large enough that dispatch overhead is negligible, small enough that a
/// typical n x F representation still splits across threads.
constexpr int64_t kElementGrain = int64_t{1} << 15;

/// Rows per chunk for kernels doing `row_flops` work per row — the shared
/// ~64k-flops-per-chunk target (docs/PERFORMANCE.md).
int64_t RowGrain(int64_t row_flops) {
  return parallel::GrainForFlops(row_flops, int64_t{1} << 16);
}

}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(a.cols() == b.rows(), "Gemm: inner dimensions mismatch");
  SGNN_CHECK(out->rows() == a.rows() && out->cols() == b.cols(),
             "Gemm: output shape mismatch");
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  out->Fill(0.0f);
  // Row-partitioned over `out`; within a row the i-k-j order streams through
  // b and out contiguously and accumulates kk in ascending order, so the
  // parallel result is bit-identical to the serial one.
  parallel::ParallelFor(0, n, RowGrain(k * m), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* arow = a.row(i);
      float* orow = out->row(i);
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const float* brow = b.row(kk);
        for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(a.rows() == b.rows(), "GemmTransA: inner dimensions mismatch");
  SGNN_CHECK(out->rows() == a.cols() && out->cols() == b.cols(),
             "GemmTransA: output shape mismatch");
  const int64_t k = a.rows(), n = a.cols(), m = b.cols();
  out->Fill(0.0f);
  // i-outer so each chunk owns a row range of `out` (the kk-outer order
  // would race on out rows). Per output element the kk accumulation is
  // still ascending, so any thread count gives the same bits.
  parallel::ParallelFor(0, n, RowGrain(k * m), [&](int64_t lo, int64_t hi) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* arow = a.row(kk);
      const float* brow = b.row(kk);
      for (int64_t i = lo; i < hi; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* orow = out->row(i);
        for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(a.cols() == b.cols(), "GemmTransB: inner dimensions mismatch");
  SGNN_CHECK(out->rows() == a.rows() && out->cols() == b.rows(),
             "GemmTransB: output shape mismatch");
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  parallel::ParallelFor(0, n, RowGrain(k * m), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* arow = a.row(i);
      float* orow = out->row(i);
      for (int64_t j = 0; j < m; ++j) {
        const float* brow = b.row(j);
        double acc = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) acc += double(arow[kk]) * brow[kk];
        orow[j] = static_cast<float>(acc);
      }
    }
  });
}

void Axpy(float alpha, const Matrix& x, Matrix* y) {
  SGNN_CHECK(x.size() == y->size(), "Axpy: size mismatch");
  const float* xd = x.data();
  float* yd = y->data();
  parallel::ParallelFor(0, x.size(), kElementGrain,
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            yd[i] += alpha * xd[i];
                          }
                        });
}

void Scale(float alpha, Matrix* x) {
  float* xd = x->data();
  parallel::ParallelFor(0, x->size(), kElementGrain,
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) xd[i] *= alpha;
                        });
}

void Copy(const Matrix& x, Matrix* y) {
  SGNN_CHECK(x.size() == y->size(), "Copy: size mismatch");
  std::memcpy(y->data(), x.data(), x.bytes());
}

void Add(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(a.size() == b.size() && a.size() == out->size(),
             "Add: size mismatch");
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out->data();
  parallel::ParallelFor(0, a.size(), kElementGrain,
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            od[i] = ad[i] + bd[i];
                          }
                        });
}

void Sub(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(a.size() == b.size() && a.size() == out->size(),
             "Sub: size mismatch");
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out->data();
  parallel::ParallelFor(0, a.size(), kElementGrain,
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            od[i] = ad[i] - bd[i];
                          }
                        });
}

void MulInPlace(const Matrix& x, Matrix* y) {
  SGNN_CHECK(x.size() == y->size(), "MulInPlace: size mismatch");
  const float* xd = x.data();
  float* yd = y->data();
  parallel::ParallelFor(0, x.size(), kElementGrain,
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) yd[i] *= xd[i];
                        });
}

// Dot and the Column* reductions below stay serial on purpose: a chunked
// reduction changes the floating-point summation order, and these feed
// filter-parameter gradients and the OptBasis orthogonalization, where the
// serial bits are the documented reference. They are O(nF) against the
// kernels' O(nF^2)/O(mF), so the ceiling they put on scaling is small
// (measured in docs/PERFORMANCE.md).
double Dot(const Matrix& a, const Matrix& b) {
  SGNN_CHECK(a.size() == b.size(), "Dot: size mismatch");
  const float* ad = a.data();
  const float* bd = b.data();
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += double(ad[i]) * bd[i];
  return acc;
}

void AddRowBroadcast(const Matrix& bias, Matrix* x) {
  SGNN_CHECK(bias.rows() == 1 && bias.cols() == x->cols(),
             "AddRowBroadcast: bias shape mismatch");
  const float* bd = bias.data();
  parallel::ParallelFor(
      0, x->rows(), RowGrain(x->cols()), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          float* xrow = x->row(i);
          for (int64_t j = 0; j < x->cols(); ++j) xrow[j] += bd[j];
        }
      });
}

void ColumnSum(const Matrix& x, Matrix* out) {
  SGNN_CHECK(out->rows() == 1 && out->cols() == x.cols(),
             "ColumnSum: output shape mismatch");
  out->Fill(0.0f);
  float* od = out->data();
  for (int64_t i = 0; i < x.rows(); ++i) {
    const float* xrow = x.row(i);
    for (int64_t j = 0; j < x.cols(); ++j) od[j] += xrow[j];
  }
}

void ColumnNorm(const Matrix& x, Matrix* out) {
  SGNN_CHECK(out->rows() == 1 && out->cols() == x.cols(),
             "ColumnNorm: output shape mismatch");
  std::vector<double> acc(static_cast<size_t>(x.cols()), 0.0);
  for (int64_t i = 0; i < x.rows(); ++i) {
    const float* xrow = x.row(i);
    for (int64_t j = 0; j < x.cols(); ++j)
      acc[static_cast<size_t>(j)] += double(xrow[j]) * xrow[j];
  }
  for (int64_t j = 0; j < x.cols(); ++j)
    out->at(0, j) = static_cast<float>(std::sqrt(acc[static_cast<size_t>(j)]));
}

void ColumnDot(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "ColumnDot: input shape mismatch");
  SGNN_CHECK(out->rows() == 1 && out->cols() == a.cols(),
             "ColumnDot: output shape mismatch");
  std::vector<double> acc(static_cast<size_t>(a.cols()), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    const float* brow = b.row(i);
    for (int64_t j = 0; j < a.cols(); ++j)
      acc[static_cast<size_t>(j)] += double(arow[j]) * brow[j];
  }
  for (int64_t j = 0; j < a.cols(); ++j)
    out->at(0, j) = static_cast<float>(acc[static_cast<size_t>(j)]);
}

void ColumnScale(const Matrix& alpha, Matrix* x) {
  SGNN_CHECK(alpha.rows() == 1 && alpha.cols() == x->cols(),
             "ColumnScale: alpha shape mismatch");
  const float* ad = alpha.data();
  parallel::ParallelFor(
      0, x->rows(), RowGrain(x->cols()), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          float* xrow = x->row(i);
          for (int64_t j = 0; j < x->cols(); ++j) xrow[j] *= ad[j];
        }
      });
}

void AxpyColumnwise(const Matrix& alpha, const Matrix& x, Matrix* y) {
  SGNN_CHECK(alpha.rows() == 1 && alpha.cols() == x.cols(),
             "AxpyColumnwise: alpha shape mismatch");
  SGNN_CHECK(x.rows() == y->rows() && x.cols() == y->cols(),
             "AxpyColumnwise: shape mismatch");
  const float* ad = alpha.data();
  parallel::ParallelFor(
      0, x.rows(), RowGrain(x.cols()), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float* xrow = x.row(i);
          float* yrow = y->row(i);
          for (int64_t j = 0; j < x.cols(); ++j) yrow[j] += ad[j] * xrow[j];
        }
      });
}

void RowL2Normalize(Matrix* x) {
  parallel::ParallelFor(
      0, x->rows(), RowGrain(2 * x->cols()), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          float* xrow = x->row(i);
          double acc = 0.0;
          for (int64_t j = 0; j < x->cols(); ++j) {
            acc += double(xrow[j]) * xrow[j];
          }
          if (acc <= 0.0) continue;
          const float inv = static_cast<float>(1.0 / std::sqrt(acc));
          for (int64_t j = 0; j < x->cols(); ++j) xrow[j] *= inv;
        }
      });
}

void ReluInPlace(Matrix* x) {
  float* xd = x->data();
  parallel::ParallelFor(0, x->size(), kElementGrain,
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            xd[i] = xd[i] > 0.0f ? xd[i] : 0.0f;
                          }
                        });
}

void ReluBackwardInPlace(const Matrix& preact, Matrix* grad) {
  SGNN_CHECK(preact.size() == grad->size(),
             "ReluBackwardInPlace: size mismatch");
  const float* pd = preact.data();
  float* gd = grad->data();
  parallel::ParallelFor(0, grad->size(), kElementGrain,
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            if (pd[i] <= 0.0f) gd[i] = 0.0f;
                          }
                        });
}

bool AllFinite(const Matrix& x) {
  const float* d = x.data();
  for (int64_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(d[i])) return false;
  }
  return true;
}

}  // namespace sgnn::ops

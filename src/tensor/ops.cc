#include "tensor/ops.h"

#include <cmath>
#include <cstring>

namespace sgnn::ops {

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(a.cols() == b.rows(), "Gemm: inner dimensions mismatch");
  SGNN_CHECK(out->rows() == a.rows() && out->cols() == b.cols(),
             "Gemm: output shape mismatch");
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  out->Fill(0.0f);
  // i-k-j loop order: streams through b and out rows contiguously.
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.row(kk);
      for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
}

void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(a.rows() == b.rows(), "GemmTransA: inner dimensions mismatch");
  SGNN_CHECK(out->rows() == a.cols() && out->cols() == b.cols(),
             "GemmTransA: output shape mismatch");
  const int64_t k = a.rows(), n = a.cols(), m = b.cols();
  out->Fill(0.0f);
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a.row(kk);
    const float* brow = b.row(kk);
    for (int64_t i = 0; i < n; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out->row(i);
      for (int64_t j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
}

void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(a.cols() == b.cols(), "GemmTransB: inner dimensions mismatch");
  SGNN_CHECK(out->rows() == a.rows() && out->cols() == b.rows(),
             "GemmTransB: output shape mismatch");
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int64_t j = 0; j < m; ++j) {
      const float* brow = b.row(j);
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) acc += double(arow[kk]) * brow[kk];
      orow[j] = static_cast<float>(acc);
    }
  }
}

void Axpy(float alpha, const Matrix& x, Matrix* y) {
  SGNN_CHECK(x.size() == y->size(), "Axpy: size mismatch");
  const float* xd = x.data();
  float* yd = y->data();
  for (int64_t i = 0; i < x.size(); ++i) yd[i] += alpha * xd[i];
}

void Scale(float alpha, Matrix* x) {
  float* xd = x->data();
  for (int64_t i = 0; i < x->size(); ++i) xd[i] *= alpha;
}

void Copy(const Matrix& x, Matrix* y) {
  SGNN_CHECK(x.size() == y->size(), "Copy: size mismatch");
  std::memcpy(y->data(), x.data(), x.bytes());
}

void Add(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(a.size() == b.size() && a.size() == out->size(),
             "Add: size mismatch");
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out->data();
  for (int64_t i = 0; i < a.size(); ++i) od[i] = ad[i] + bd[i];
}

void Sub(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(a.size() == b.size() && a.size() == out->size(),
             "Sub: size mismatch");
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out->data();
  for (int64_t i = 0; i < a.size(); ++i) od[i] = ad[i] - bd[i];
}

void MulInPlace(const Matrix& x, Matrix* y) {
  SGNN_CHECK(x.size() == y->size(), "MulInPlace: size mismatch");
  const float* xd = x.data();
  float* yd = y->data();
  for (int64_t i = 0; i < x.size(); ++i) yd[i] *= xd[i];
}

double Dot(const Matrix& a, const Matrix& b) {
  SGNN_CHECK(a.size() == b.size(), "Dot: size mismatch");
  const float* ad = a.data();
  const float* bd = b.data();
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += double(ad[i]) * bd[i];
  return acc;
}

void AddRowBroadcast(const Matrix& bias, Matrix* x) {
  SGNN_CHECK(bias.rows() == 1 && bias.cols() == x->cols(),
             "AddRowBroadcast: bias shape mismatch");
  const float* bd = bias.data();
  for (int64_t i = 0; i < x->rows(); ++i) {
    float* xrow = x->row(i);
    for (int64_t j = 0; j < x->cols(); ++j) xrow[j] += bd[j];
  }
}

void ColumnSum(const Matrix& x, Matrix* out) {
  SGNN_CHECK(out->rows() == 1 && out->cols() == x.cols(),
             "ColumnSum: output shape mismatch");
  out->Fill(0.0f);
  float* od = out->data();
  for (int64_t i = 0; i < x.rows(); ++i) {
    const float* xrow = x.row(i);
    for (int64_t j = 0; j < x.cols(); ++j) od[j] += xrow[j];
  }
}

void ColumnNorm(const Matrix& x, Matrix* out) {
  SGNN_CHECK(out->rows() == 1 && out->cols() == x.cols(),
             "ColumnNorm: output shape mismatch");
  std::vector<double> acc(static_cast<size_t>(x.cols()), 0.0);
  for (int64_t i = 0; i < x.rows(); ++i) {
    const float* xrow = x.row(i);
    for (int64_t j = 0; j < x.cols(); ++j)
      acc[static_cast<size_t>(j)] += double(xrow[j]) * xrow[j];
  }
  for (int64_t j = 0; j < x.cols(); ++j)
    out->at(0, j) = static_cast<float>(std::sqrt(acc[static_cast<size_t>(j)]));
}

void ColumnDot(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "ColumnDot: input shape mismatch");
  SGNN_CHECK(out->rows() == 1 && out->cols() == a.cols(),
             "ColumnDot: output shape mismatch");
  std::vector<double> acc(static_cast<size_t>(a.cols()), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    const float* brow = b.row(i);
    for (int64_t j = 0; j < a.cols(); ++j)
      acc[static_cast<size_t>(j)] += double(arow[j]) * brow[j];
  }
  for (int64_t j = 0; j < a.cols(); ++j)
    out->at(0, j) = static_cast<float>(acc[static_cast<size_t>(j)]);
}

void ColumnScale(const Matrix& alpha, Matrix* x) {
  SGNN_CHECK(alpha.rows() == 1 && alpha.cols() == x->cols(),
             "ColumnScale: alpha shape mismatch");
  const float* ad = alpha.data();
  for (int64_t i = 0; i < x->rows(); ++i) {
    float* xrow = x->row(i);
    for (int64_t j = 0; j < x->cols(); ++j) xrow[j] *= ad[j];
  }
}

void AxpyColumnwise(const Matrix& alpha, const Matrix& x, Matrix* y) {
  SGNN_CHECK(alpha.rows() == 1 && alpha.cols() == x.cols(),
             "AxpyColumnwise: alpha shape mismatch");
  SGNN_CHECK(x.rows() == y->rows() && x.cols() == y->cols(),
             "AxpyColumnwise: shape mismatch");
  const float* ad = alpha.data();
  for (int64_t i = 0; i < x.rows(); ++i) {
    const float* xrow = x.row(i);
    float* yrow = y->row(i);
    for (int64_t j = 0; j < x.cols(); ++j) yrow[j] += ad[j] * xrow[j];
  }
}

void RowL2Normalize(Matrix* x) {
  for (int64_t i = 0; i < x->rows(); ++i) {
    float* xrow = x->row(i);
    double acc = 0.0;
    for (int64_t j = 0; j < x->cols(); ++j) acc += double(xrow[j]) * xrow[j];
    if (acc <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / std::sqrt(acc));
    for (int64_t j = 0; j < x->cols(); ++j) xrow[j] *= inv;
  }
}

bool AllFinite(const Matrix& x) {
  const float* d = x.data();
  for (int64_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(d[i])) return false;
  }
  return true;
}

}  // namespace sgnn::ops

// Endianness-safe binary serialization primitives.
//
// The serving checkpoint (src/serve/checkpoint.h) and the CSR snapshot
// format (sparse/serialize.h) share these codecs: every multi-byte value is
// written as explicit little-endian bytes, so an artifact trained on one
// machine restores bit-identically on any other regardless of host byte
// order. Readers are bounds-checked and return typed Status instead of
// reading past the end, which is what turns a truncated or bit-flipped
// checkpoint into a clean IOError instead of undefined behavior.

#ifndef SGNN_TENSOR_SERIALIZE_H_
#define SGNN_TENSOR_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "tensor/matrix.h"
#include "tensor/status.h"

namespace sgnn::serialize {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `size` bytes. Pass the
/// previous return value as `seed` to checksum a stream incrementally;
/// the default seed starts a fresh checksum.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Appends little-endian fixed-width values to a growable byte buffer.
/// Writer methods are named Put* (vs the Reader's bare U32/Str/...) so the
/// void-returning append calls can never be confused with — or flagged by
/// sgnn_lint's discarded-status pass as — their Status-returning Reader
/// counterparts.
class Writer {
 public:
  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v);
  void PutI64(int64_t v);
  /// Float codecs write the IEEE-754 bit pattern as little-endian bytes.
  void PutF32(float v);
  void PutF64(double v);
  /// Length-prefixed (u32) byte string.
  void PutStr(const std::string& s);
  /// Raw bytes, no length prefix.
  void PutBytes(const void* data, size_t size);

  const std::string& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }
  std::string&& MoveBuffer() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader over a byte span. Every accessor
/// returns IOError once the span is exhausted; the cursor never moves past
/// the end, so a short file fails loudly at the first missing field.
class Reader {
 public:
  Reader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}

  [[nodiscard]] Status U8(uint8_t* v);
  [[nodiscard]] Status U16(uint16_t* v);
  [[nodiscard]] Status U32(uint32_t* v);
  [[nodiscard]] Status U64(uint64_t* v);
  [[nodiscard]] Status I32(int32_t* v);
  [[nodiscard]] Status I64(int64_t* v);
  [[nodiscard]] Status F32(float* v);
  [[nodiscard]] Status F64(double* v);
  /// Reads a u32 length prefix then that many bytes. `max_len` bounds the
  /// allocation so a corrupt length field cannot OOM the process.
  [[nodiscard]] Status Str(std::string* s, uint32_t max_len = 1u << 20);
  /// Copies exactly `size` raw bytes (no length prefix) into `out`, which
  /// must already have room. IOError when fewer bytes remain.
  [[nodiscard]] Status Raw(void* out, size_t size);

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

 private:
  [[nodiscard]] Status Take(size_t n, const uint8_t** out);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Appends a Matrix as (i64 rows, i64 cols, f32 row-major data).
void AppendMatrix(const Matrix& m, Writer* w);

/// Reads a Matrix written by AppendMatrix onto `device`. Rejects negative
/// or implausibly large shapes (> `max_elems` elements) with IOError.
[[nodiscard]] Status ReadMatrix(Reader* r, Device device, Matrix* out,
                                int64_t max_elems = int64_t{1} << 32);

}  // namespace sgnn::serialize

#endif  // SGNN_TENSOR_SERIALIZE_H_

#include "tensor/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace sgnn::parallel {

namespace {

/// Set while a thread executes chunks (workers, the submitting caller, and
/// the serial fallback); nested ParallelFor calls detect it and run inline.
thread_local bool tls_in_parallel = false;

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int EnvThreads() {
  const char* env = std::getenv("SGNN_NUM_THREADS");
  if (env == nullptr || env[0] == '\0') return 0;
  const int n = std::atoi(env);
  return n > 0 ? n : 1;  // malformed/zero value means "serial", not crash
}

std::atomic<int> g_override{0};

/// One ParallelFor invocation, shared between the caller and the workers.
/// Lives on the caller's stack; the protocol in Pool::Run guarantees no
/// worker touches it after Run returns.
struct Task {
  const ChunkFn* fn = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  /// Workers allowed to join (the caller is one extra thread on top); lets
  /// a bench sweep run 2 threads on a pool that already grew to 8.
  int max_workers = 0;
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> done_chunks{0};
  /// Workers currently holding a pointer to this task.
  std::atomic<int> refs{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::mutex error_mu;
  // First exception from any chunk. Written under error_mu; ParallelFor
  // reads it lock-free after Run returns, when the done_cv handshake has
  // already ordered every worker's write before the caller's read.
  std::exception_ptr error SGNN_GUARDED_BY(error_mu);

  void RunChunk(int64_t chunk) {
    const int64_t lo = begin + chunk * grain;
    const int64_t hi = std::min(end, lo + grain);
    try {
      (*fn)(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
    }
    if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        num_chunks) {
      // Lock-then-notify so the completion cannot slip between the waiter's
      // predicate check and its sleep.
      std::lock_guard<std::mutex> lock(done_mu);
      done_cv.notify_all();
    }
  }

  /// Claims and runs chunks until none remain.
  void Drain() {
    while (true) {
      const int64_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      RunChunk(chunk);
    }
  }

  bool Finished() const {
    return done_chunks.load(std::memory_order_acquire) >= num_chunks &&
           refs.load(std::memory_order_acquire) == 0;
  }
};

/// Lazily created worker pool. One task runs at a time: nested calls take
/// the serial fallback, concurrent top-level callers queue on submit_mu_.
/// The pool is intentionally leaked — workers blocked on the condition
/// variable at process exit must not race static destruction.
class Pool {
 public:
  static Pool& Get() {
    static Pool* pool = new Pool();
    return *pool;
  }

  void Run(Task* task) {
    std::lock_guard<std::mutex> submit_lock(submit_mu_);
    EnsureWorkers(task->max_workers);
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = task;
      ++epoch_;
    }
    cv_.notify_all();
    tls_in_parallel = true;
    task->Drain();
    tls_in_parallel = false;
    // All chunks are claimed. Retract the task so no further worker can
    // acquire it, then wait for the ones that did to finish their chunks
    // and drop their references — after that the stack-allocated task is
    // safe to destroy.
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = nullptr;
    }
    std::unique_lock<std::mutex> lock(task->done_mu);
    task->done_cv.wait(lock, [task] { return task->Finished(); });
  }

 private:
  Pool() = default;

  void EnsureWorkers(int target) {
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < target) {
      const int index = static_cast<int>(workers_.size());
      workers_.emplace_back([this, index] { WorkerLoop(index); });
    }
  }

  void WorkerLoop(int index) {
    uint64_t seen_epoch = 0;
    while (true) {
      Task* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this, seen_epoch] { return epoch_ != seen_epoch; });
        seen_epoch = epoch_;
        if (current_ != nullptr && index < current_->max_workers) {
          task = current_;
          task->refs.fetch_add(1, std::memory_order_acq_rel);
        }
      }
      if (task == nullptr) continue;
      tls_in_parallel = true;
      task->Drain();
      tls_in_parallel = false;
      {
        std::lock_guard<std::mutex> lock(task->done_mu);
        task->refs.fetch_sub(1, std::memory_order_acq_rel);
        task->done_cv.notify_all();
      }
    }
  }

  std::mutex submit_mu_;  ///< serializes top-level ParallelFor calls
  std::mutex mu_;         ///< guards current_/epoch_/workers_
  std::condition_variable cv_;
  std::vector<std::thread> workers_ SGNN_GUARDED_BY(mu_);
  Task* current_ SGNN_GUARDED_BY(mu_) = nullptr;
  uint64_t epoch_ SGNN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int NumThreads() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  const int env = EnvThreads();
  if (env > 0) return env;
  return HardwareThreads();
}

void SetNumThreads(int n) {
  g_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int ThreadCount() { return NumThreads(); }

bool InParallelRegion() { return tls_in_parallel; }

int64_t NumChunks(int64_t begin, int64_t end, int64_t grain) {
  if (end <= begin) return 0;
  if (grain < 1) grain = 1;
  return (end - begin + grain - 1) / grain;
}

int64_t GrainForFlops(int64_t flops_per_item, int64_t flops_per_chunk) {
  if (flops_per_item < 1) flops_per_item = 1;
  const int64_t grain = flops_per_chunk / flops_per_item;
  return grain < 1 ? 1 : grain;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const ChunkFn& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const int64_t chunks = NumChunks(begin, end, grain);
  const int threads = NumThreads();
  // Serial fallback: same chunks, same order, no pool. Nested calls always
  // take this path, so an inner kernel can neither deadlock on the single
  // task slot nor oversubscribe the machine.
  if (threads <= 1 || chunks <= 1 || tls_in_parallel) {
    const bool was_in_parallel = tls_in_parallel;
    tls_in_parallel = true;
    std::exception_ptr first_error;
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t lo = begin + c * grain;
      const int64_t hi = std::min(end, lo + grain);
      try {
        fn(lo, hi);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    tls_in_parallel = was_in_parallel;
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  Task task;
  task.fn = &fn;
  task.begin = begin;
  task.end = end;
  task.grain = grain;
  task.num_chunks = chunks;
  const int64_t want_workers =
      std::min<int64_t>(static_cast<int64_t>(threads) - 1, chunks - 1);
  task.max_workers = static_cast<int>(want_workers);
  Pool::Get().Run(&task);
  if (task.error) std::rethrow_exception(task.error);
}

}  // namespace sgnn::parallel

// Dense linear-algebra kernels over Matrix.
//
// These implement the "transformation" side of the paper's complexity model
// (Section 2.2): scalar ops cost O(nF), weight multiplications O(nF^2).

#ifndef SGNN_TENSOR_OPS_H_
#define SGNN_TENSOR_OPS_H_

#include "tensor/matrix.h"

namespace sgnn::ops {

/// out = a * b. Shapes: (n,k) x (k,m) -> (n,m). `out` is overwritten and must
/// be pre-shaped; aliasing with inputs is not allowed.
void Gemm(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b. Shapes: (k,n) x (k,m) -> (n,m).
void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b^T. Shapes: (n,k) x (m,k) -> (n,m).
void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out);

/// y += alpha * x (same shape).
void Axpy(float alpha, const Matrix& x, Matrix* y);

/// x *= alpha.
void Scale(float alpha, Matrix* x);

/// y = x (copies values; shapes must match).
void Copy(const Matrix& x, Matrix* y);

/// out = a + b.
void Add(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a - b.
void Sub(const Matrix& a, const Matrix& b, Matrix* out);

/// Elementwise product: y *= x.
void MulInPlace(const Matrix& x, Matrix* y);

/// Sum over all elements of the elementwise product <a, b> (Frobenius inner
/// product). Used for filter-parameter gradients.
double Dot(const Matrix& a, const Matrix& b);

/// Adds `bias` (1 x F) to every row of x.
void AddRowBroadcast(const Matrix& bias, Matrix* x);

/// Column-wise sums of x into out (1 x F). Used for bias gradients.
void ColumnSum(const Matrix& x, Matrix* out);

/// Per-column L2 norms of x into out (1 x F).
void ColumnNorm(const Matrix& x, Matrix* out);

/// Per-column inner products sum_r a[r][c]*b[r][c] into out (1 x F).
/// Used by the OptBasis filter's per-channel orthogonalization.
void ColumnDot(const Matrix& a, const Matrix& b, Matrix* out);

/// Scales column c of x by alpha[0][c].
void ColumnScale(const Matrix& alpha, Matrix* x);

/// y += x * diag(alpha) where alpha is 1 x F. Channel-wise accumulate.
void AxpyColumnwise(const Matrix& alpha, const Matrix& x, Matrix* y);

/// L2-normalizes each row of x in place (zero rows left untouched).
void RowL2Normalize(Matrix* x);

/// x = max(x, 0) elementwise — the MLP activation.
void ReluInPlace(Matrix* x);

/// Zeroes grad where the cached pre-activation was <= 0 (ReLU backward).
void ReluBackwardInPlace(const Matrix& preact, Matrix* grad);

/// True when every element is finite (no NaN/Inf). Used by the training run
/// guards for divergence detection.
bool AllFinite(const Matrix& x);

}  // namespace sgnn::ops

#endif  // SGNN_TENSOR_OPS_H_

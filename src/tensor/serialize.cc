#include "tensor/serialize.h"

#include <array>
#include <cstring>

namespace sgnn::serialize {

namespace {

/// Reflected CRC-32 lookup table, built once from the IEEE polynomial.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto& table = CrcTable();
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void Writer::PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

void Writer::PutU16(uint16_t v) {
  buf_.push_back(static_cast<char>(v & 0xFFu));
  buf_.push_back(static_cast<char>((v >> 8) & 0xFFu));
}

void Writer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void Writer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void Writer::PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
void Writer::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void Writer::PutF32(float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void Writer::PutF64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Writer::PutStr(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void Writer::PutBytes(const void* data, size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

Status Reader::Take(size_t n, const uint8_t** out) {
  if (size_ - pos_ < n) {
    return Status::IOError("truncated input: need " + std::to_string(n) +
                           " bytes at offset " + std::to_string(pos_) +
                           ", have " + std::to_string(size_ - pos_));
  }
  *out = data_ + pos_;
  pos_ += n;
  return Status::OK();
}

Status Reader::U8(uint8_t* v) {
  const uint8_t* p = nullptr;
  SGNN_RETURN_IF_ERROR(Take(1, &p));
  *v = p[0];
  return Status::OK();
}

Status Reader::U16(uint16_t* v) {
  const uint8_t* p = nullptr;
  SGNN_RETURN_IF_ERROR(Take(2, &p));
  *v = static_cast<uint16_t>(static_cast<uint16_t>(p[0]) |
                             (static_cast<uint16_t>(p[1]) << 8));
  return Status::OK();
}

Status Reader::U32(uint32_t* v) {
  const uint8_t* p = nullptr;
  SGNN_RETURN_IF_ERROR(Take(4, &p));
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return Status::OK();
}

Status Reader::U64(uint64_t* v) {
  const uint8_t* p = nullptr;
  SGNN_RETURN_IF_ERROR(Take(8, &p));
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return Status::OK();
}

Status Reader::I32(int32_t* v) {
  uint32_t u = 0;
  SGNN_RETURN_IF_ERROR(U32(&u));
  *v = static_cast<int32_t>(u);
  return Status::OK();
}

Status Reader::I64(int64_t* v) {
  uint64_t u = 0;
  SGNN_RETURN_IF_ERROR(U64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status Reader::F32(float* v) {
  uint32_t bits = 0;
  SGNN_RETURN_IF_ERROR(U32(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status Reader::F64(double* v) {
  uint64_t bits = 0;
  SGNN_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status Reader::Str(std::string* s, uint32_t max_len) {
  uint32_t len = 0;
  SGNN_RETURN_IF_ERROR(U32(&len));
  if (len > max_len) {
    return Status::IOError("string length " + std::to_string(len) +
                           " exceeds limit " + std::to_string(max_len));
  }
  const uint8_t* p = nullptr;
  SGNN_RETURN_IF_ERROR(Take(len, &p));
  s->assign(reinterpret_cast<const char*>(p), len);
  return Status::OK();
}

Status Reader::Raw(void* out, size_t size) {
  const uint8_t* p = nullptr;
  SGNN_RETURN_IF_ERROR(Take(size, &p));
  std::memcpy(out, p, size);
  return Status::OK();
}

void AppendMatrix(const Matrix& m, Writer* w) {
  w->PutI64(m.rows());
  w->PutI64(m.cols());
  const float* d = m.data();
  for (int64_t i = 0; i < m.size(); ++i) w->PutF32(d[i]);
}

Status ReadMatrix(Reader* r, Device device, Matrix* out, int64_t max_elems) {
  int64_t rows = 0, cols = 0;
  SGNN_RETURN_IF_ERROR(r->I64(&rows));
  SGNN_RETURN_IF_ERROR(r->I64(&cols));
  if (rows < 0 || cols < 0 || (cols > 0 && rows > max_elems / cols)) {
    return Status::IOError("corrupt matrix shape " + std::to_string(rows) +
                           "x" + std::to_string(cols));
  }
  Matrix m(rows, cols, device);
  float* d = m.data();
  for (int64_t i = 0; i < m.size(); ++i) {
    SGNN_RETURN_IF_ERROR(r->F32(&d[i]));
  }
  *out = std::move(m);
  return Status::OK();
}

}  // namespace sgnn::serialize

// Dependency-free thread-pool parallelism for the hot kernels.
//
// The paper's efficiency story (Tables 9/11, Figures 2/5) is only credible
// when the elementary operations — SpMM propagation, dense GEMM
// transformation, push propagation — saturate the hardware. This module
// provides the one primitive they share: ParallelFor over a fixed,
// thread-count-independent chunking of an index range.
//
// Determinism contract (docs/PERFORMANCE.md has the full story):
//   * Chunk boundaries depend only on (begin, end, grain) — never on the
//     thread count or scheduling. A kernel whose chunks write disjoint
//     outputs, or whose chunk-local partials are merged in chunk order,
//     therefore produces bit-identical results at 1 and N threads, which
//     keeps the tier-1 equality tests and journal-resume replays valid.
//   * The serial fallback (1 thread, empty pool, or a nested call) iterates
//     the same chunks in the same order.
//
// Thread count resolution: SetNumThreads() override, else the
// SGNN_NUM_THREADS environment variable, else std::thread::hardware
// concurrency. The pool is created lazily on the first parallel call and
// grows when the configured count rises; at 1 thread no pool is ever
// created and every call runs inline.

#ifndef SGNN_TENSOR_PARALLEL_H_
#define SGNN_TENSOR_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace sgnn::parallel {

/// Chunk body: invoked with a half-open sub-range [chunk_begin, chunk_end).
using ChunkFn = std::function<void(int64_t, int64_t)>;

/// Threads used by subsequent ParallelFor calls (>= 1). Resolution order:
/// SetNumThreads override, SGNN_NUM_THREADS, hardware concurrency.
int NumThreads();

/// Overrides the thread count for subsequent calls (bench sweeps, tests).
/// n <= 0 clears the override back to env/hardware resolution.
void SetNumThreads(int n);

/// Maximum workers the pool would use right now (alias for NumThreads, for
/// journal rows and bench banners).
int ThreadCount();

/// True while the calling thread is inside a ParallelFor chunk (including
/// the serial fallback). Nested ParallelFor calls run serially.
bool InParallelRegion();

/// Splits [begin, end) into ceil((end-begin)/grain) fixed chunks and invokes
/// `fn` once per chunk, using up to NumThreads() threads (the caller
/// participates). Chunks may run concurrently and in any order; within a
/// chunk, iteration order is the caller's. Exceptions thrown by `fn` are
/// latched and the first one is rethrown on the calling thread after every
/// chunk has finished. `grain` < 1 is treated as 1.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const ChunkFn& fn);

/// Grain that targets `flops_per_chunk` work units for items costing
/// `flops_per_item` each — the shared grain-size heuristic of the dense and
/// sparse kernels (rationale in docs/PERFORMANCE.md).
int64_t GrainForFlops(int64_t flops_per_item, int64_t flops_per_chunk);

/// Number of chunks ParallelFor will produce for the given range — exposed
/// so kernels that keep chunk-local partial buffers (push propagation) can
/// size them without duplicating the chunking rule.
int64_t NumChunks(int64_t begin, int64_t end, int64_t grain);

}  // namespace sgnn::parallel

#endif  // SGNN_TENSOR_PARALLEL_H_

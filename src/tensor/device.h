// Simulated device model.
//
// The paper evaluates GPU-vs-RAM memory placement (full-batch keeps the graph
// and all representations on the GPU; decoupled mini-batch keeps them in host
// RAM and streams batches). This repo has no GPU, so we reproduce the *memory
// semantics*: every Matrix is tagged with a Device, a global DeviceTracker
// accounts live and peak bytes per device, and allocations on the simulated
// accelerator beyond a configurable capacity latch an OOM flag that training
// pipelines surface exactly where the paper reports "(OOM)".
//
// Timing is measured on the real CPU; a per-device speed factor lets the
// Figure-5 hardware study replay measured stage times under a different
// CPU/GPU balance.

#ifndef SGNN_TENSOR_DEVICE_H_
#define SGNN_TENSOR_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "core/thread_annotations.h"

namespace sgnn {

/// Placement of a tensor in the simulated two-device machine.
enum class Device {
  kHost = 0,   ///< CPU / RAM (unbounded in the simulation).
  kAccel = 1,  ///< Simulated accelerator ("GPU" in paper tables).
};

/// Returns "host" or "accel".
const char* DeviceName(Device device);

/// Global byte accounting for the simulated machine. Thread-safe.
class DeviceTracker {
 public:
  /// The process-wide tracker instance.
  static DeviceTracker& Global();

  /// Records an allocation of `bytes` on `device`.
  void OnAlloc(Device device, size_t bytes);

  /// Records a release of `bytes` on `device`.
  void OnFree(Device device, size_t bytes);

  /// Sets the simulated accelerator capacity in bytes (0 = unlimited).
  void set_accel_capacity(size_t bytes);
  size_t accel_capacity() const;

  /// Live bytes currently resident on `device`.
  size_t live_bytes(Device device) const;

  /// High-water mark since the last ResetPeak().
  size_t peak_bytes(Device device) const;

  /// True once any accelerator allocation exceeded capacity. Latched until
  /// ClearOom().
  bool accel_oom() const;

  /// Number of capacity crossings: incremented only when an allocation
  /// latches the OOM flag while it is clear, so a burst of over-capacity
  /// allocations counts as one event.
  size_t oom_events() const;

  /// Fault-injection hook (see runtime/fault_injection.h). Called for every
  /// allocation, outside the tracker lock; returning true for an accelerator
  /// allocation latches the OOM flag exactly as a capacity overflow would.
  /// Pass nullptr to uninstall.
  using AllocFaultHook = std::function<bool(Device device, size_t bytes)>;
  void SetAllocFaultHook(AllocFaultHook hook);

  /// Resets peak counters to the current live values.
  void ResetPeak();

  /// Clears the latched OOM flag.
  void ClearOom();

  /// Resets all counters and the OOM flag (test isolation helper).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  size_t live_[2] SGNN_GUARDED_BY(mu_) = {0, 0};
  size_t peak_[2] SGNN_GUARDED_BY(mu_) = {0, 0};
  size_t accel_capacity_ SGNN_GUARDED_BY(mu_) = 0;
  bool accel_oom_ SGNN_GUARDED_BY(mu_) = false;
  size_t oom_events_ SGNN_GUARDED_BY(mu_) = 0;
  AllocFaultHook alloc_fault_hook_ SGNN_GUARDED_BY(mu_);
};

/// Formats a byte count as "1.23 GB" / "45.6 MB" for table output.
std::string FormatBytes(size_t bytes);

}  // namespace sgnn

#endif  // SGNN_TENSOR_DEVICE_H_

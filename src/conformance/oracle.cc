#include "conformance/oracle.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

namespace sgnn::conformance {
namespace {

// y = U diag(resp) Uᵀ x for one response vector shared by all channels,
// double accumulation throughout (U is stored float; the arithmetic is not).
Matrix DenseSpectralApply(const eval::EigenDecomposition& eig,
                          const std::vector<double>& resp, const Matrix& x) {
  const int64_t n = x.rows();
  const int64_t f = x.cols();
  const int64_t ne = static_cast<int64_t>(eig.values.size());
  // c = Uᵀ x.
  std::vector<double> coef(static_cast<size_t>(ne * f), 0.0);
  for (int64_t i = 0; i < ne; ++i) {
    for (int64_t r = 0; r < n; ++r) {
      const double u = eig.vectors.at(r, i);
      for (int64_t j = 0; j < f; ++j) {
        coef[static_cast<size_t>(i * f + j)] +=
            u * static_cast<double>(x.at(r, j));
      }
    }
  }
  Matrix y(n, f, Device::kHost);
  y.Fill(0.0f);
  std::vector<double> acc(static_cast<size_t>(f), 0.0);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < f; ++j) acc[static_cast<size_t>(j)] = 0.0;
    for (int64_t i = 0; i < ne; ++i) {
      const double scaled = resp[static_cast<size_t>(i)] * eig.vectors.at(r, i);
      for (int64_t j = 0; j < f; ++j) {
        acc[static_cast<size_t>(j)] += scaled * coef[static_cast<size_t>(i * f + j)];
      }
    }
    for (int64_t j = 0; j < f; ++j) {
      y.at(r, j) = static_cast<float>(acc[static_cast<size_t>(j)]);
    }
  }
  return y;
}

// adagnn ground truth: per-channel response Π_{k=1..K} (1 - γ_{k,f} λ)
// evaluated from the filter's live γ parameters (its scalar Response() is
// the feature-averaged proxy and is not the implemented operator).
Matrix AdaGnnReference(filters::SpectralFilter* filter,
                       const eval::EigenDecomposition& eig, const Matrix& x,
                       int hops) {
  const int64_t f = x.cols();
  const auto& gamma = filter->params().values();
  Matrix ref(x.rows(), f, Device::kHost);
  Matrix col(x.rows(), 1, Device::kHost);
  std::vector<double> resp(eig.values.size());
  for (int64_t j = 0; j < f; ++j) {
    for (size_t i = 0; i < eig.values.size(); ++i) {
      double r = 1.0;
      for (int k = 0; k < hops; ++k) {
        r *= 1.0 - gamma[static_cast<size_t>(k) * static_cast<size_t>(f) +
                         static_cast<size_t>(j)] *
                       eig.values[i];
      }
      resp[i] = r;
    }
    for (int64_t r = 0; r < x.rows(); ++r) col.at(r, 0) = x.at(r, j);
    Matrix ycol = DenseSpectralApply(eig, resp, col);
    for (int64_t r = 0; r < x.rows(); ++r) ref.at(r, j) = ycol.at(r, 0);
  }
  return ref;
}

// optbasis ground truth: the per-column three-term Lanczos recurrence
// against Ã, mirrored in double precision (same zero-norm guards as
// OptBasisFilter::StreamBasis). Sets *degenerate when any β falls below
// `breakdown_tol` while later basis vectors still carry weight — at that
// point the float32 recurrence normalizes a cancellation residue and the
// direction is numerically undefined, so the comparison is meaningless.
Matrix OptBasisReference(filters::SpectralFilter* filter,
                         const sparse::CsrMatrix& norm_adj, const Matrix& x,
                         int hops, bool* degenerate) {
  const int64_t n = x.rows();
  const int64_t f = x.cols();
  constexpr double kBreakdownTol = 1e-4;
  *degenerate = false;
  // Densify Ã once via Ã·I (small n only).
  Matrix ident(n, n, Device::kHost);
  ident.Fill(0.0f);
  for (int64_t r = 0; r < n; ++r) ident.at(r, r) = 1.0f;
  Matrix dense(n, n, Device::kHost);
  norm_adj.SpMM(ident, &dense);
  std::vector<double> adj(static_cast<size_t>(n * n), 0.0);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      adj[static_cast<size_t>(r * n + c)] = dense.at(r, c);
    }
  }
  const auto& theta = filter->params().values();
  Matrix y(n, f, Device::kHost);
  y.Fill(0.0f);
  std::vector<double> v(static_cast<size_t>(n)), v_prev(static_cast<size_t>(n)),
      w(static_cast<size_t>(n)), acc(static_cast<size_t>(n));
  for (int64_t j = 0; j < f; ++j) {
    double nrm0 = 0.0;
    for (int64_t r = 0; r < n; ++r) {
      v[static_cast<size_t>(r)] = x.at(r, j);
      nrm0 += v[static_cast<size_t>(r)] * v[static_cast<size_t>(r)];
    }
    nrm0 = std::sqrt(nrm0);
    const double inv0 = nrm0 > 1e-12 ? 1.0 / nrm0 : 0.0;
    for (auto& e : v) e *= inv0;
    std::fill(v_prev.begin(), v_prev.end(), 0.0);
    std::fill(acc.begin(), acc.end(), 0.0);
    double beta = 0.0;
    // term_k = v_k * nrm0; y_j = Σ_k θ_{k,j} term_k.
    auto accumulate = [&](int k) {
      const double t =
          theta[static_cast<size_t>(k) * static_cast<size_t>(f) +
                static_cast<size_t>(j)] *
          nrm0;
      for (int64_t r = 0; r < n; ++r) acc[static_cast<size_t>(r)] += t * v[static_cast<size_t>(r)];
    };
    accumulate(0);
    for (int k = 1; k <= hops; ++k) {
      for (int64_t r = 0; r < n; ++r) {
        double s = 0.0;
        for (int64_t c = 0; c < n; ++c) {
          s += adj[static_cast<size_t>(r * n + c)] * v[static_cast<size_t>(c)];
        }
        w[static_cast<size_t>(r)] = s;
      }
      double alpha = 0.0;
      for (int64_t r = 0; r < n; ++r) alpha += w[static_cast<size_t>(r)] * v[static_cast<size_t>(r)];
      for (int64_t r = 0; r < n; ++r) {
        w[static_cast<size_t>(r)] -= alpha * v[static_cast<size_t>(r)] +
                                     beta * v_prev[static_cast<size_t>(r)];
      }
      double nb = 0.0;
      for (double e : w) nb += e * e;
      nb = std::sqrt(nb);
      if (nrm0 > 1e-12 && nb < kBreakdownTol) *degenerate = true;
      const double inv = nb > 1e-9 ? 1.0 / nb : 0.0;
      v_prev = v;
      for (int64_t r = 0; r < n; ++r) v[static_cast<size_t>(r)] = w[static_cast<size_t>(r)] * inv;
      beta = nb;
      accumulate(k);
    }
    for (int64_t r = 0; r < n; ++r) {
      y.at(r, j) = static_cast<float>(acc[static_cast<size_t>(r)]);
    }
  }
  return y;
}

}  // namespace

double OracleTolerance(const std::string& filter_name) {
  // Documented in docs/CONFORMANCE.md. The loose set accumulates more
  // float32 error: bernstein runs O(K²) propagations, chebinterp
  // reparameterizes through a K²-term interpolation sum, g2cn squares its
  // channel responses over 2K hops, and optbasis/favard normalize basis
  // columns (division amplifies rounding near small norms).
  if (filter_name == "bernstein" || filter_name == "chebinterp" ||
      filter_name == "g2cn" || filter_name == "favard") {
    return 5e-3;
  }
  if (filter_name == "optbasis") return 8e-3;
  return 2e-3;
}

double RelativeFrobenius(const Matrix& a, const Matrix& b) {
  double diff = 0.0;
  double ref = 0.0;
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      const double d =
          static_cast<double>(a.at(r, c)) - static_cast<double>(b.at(r, c));
      diff += d * d;
      const double v = static_cast<double>(b.at(r, c));
      ref += v * v;
    }
  }
  return std::sqrt(diff) / std::max(1.0, std::sqrt(ref));
}

Matrix DenseReference(filters::SpectralFilter* filter,
                      const std::string& filter_name,
                      const sparse::CsrMatrix& norm_adj,
                      const eval::EigenDecomposition& eig, const Matrix& x,
                      int hops, bool* degenerate) {
  *degenerate = false;
  if (filter_name == "adagnn") {
    return AdaGnnReference(filter, eig, x, hops);
  }
  if (filter_name == "optbasis") {
    return OptBasisReference(filter, norm_adj, x, hops, degenerate);
  }
  std::vector<double> resp(eig.values.size());
  for (size_t i = 0; i < eig.values.size(); ++i) {
    resp[i] = filter->Response(eig.values[i]);
  }
  return DenseSpectralApply(eig, resp, x);
}

Result<OracleReport> CheckSpectralConformance(const std::string& filter_name,
                                              const sparse::CsrMatrix& norm_adj,
                                              const eval::EigenDecomposition& eig,
                                              const Matrix& x,
                                              const OracleOptions& options) {
  if (x.rows() != norm_adj.n()) {
    return Status::InvalidArgument("oracle: x rows != graph nodes");
  }
  if (static_cast<int64_t>(eig.values.size()) != x.rows()) {
    return Status::InvalidArgument("oracle: eigendecomposition size mismatch");
  }
  SGNN_ASSIGN_OR_RETURN(
      auto filter,
      filters::CreateFilter(filter_name, options.hops, options.hp, x.cols()));

  filters::FilterContext ctx;
  ctx.prop = &norm_adj;
  ctx.device = Device::kHost;

  OracleReport report;
  report.filter = filter_name;
  report.tolerance = OracleTolerance(filter_name);

  Matrix y;
  filter->Forward(ctx, x, &y, /*cache=*/false);

  const Matrix ref =
      DenseReference(filter.get(), filter_name, norm_adj, eig, x, options.hops,
                     &report.degenerate_basis);
  report.rel_error =
      report.degenerate_basis ? 0.0 : RelativeFrobenius(y, ref);

  if (options.check_minibatch && filter->SupportsMiniBatch()) {
    std::vector<Matrix> terms;
    Status st = filter->Precompute(ctx, x, &terms);
    if (!st.ok()) {
      report.pass = false;
      report.detail = "precompute failed: " + st.message();
      return report;
    }
    std::vector<const Matrix*> ptrs;
    ptrs.reserve(terms.size());
    for (const auto& t : terms) ptrs.push_back(&t);
    Matrix y_mb;
    filter->CombineTerms(ptrs, &y_mb, /*cache=*/false);
    report.mb_rel_error = RelativeFrobenius(y_mb, y);
  }

  const bool spectral_ok =
      report.degenerate_basis || report.rel_error <= report.tolerance;
  const bool mb_ok = report.mb_rel_error <= report.tolerance;
  report.pass = spectral_ok && mb_ok;
  if (!spectral_ok) {
    report.detail = "forward diverges from dense spectral operator";
  } else if (!mb_ok) {
    report.detail = "mini-batch combine diverges from full-batch forward";
  } else if (report.degenerate_basis) {
    report.detail = "lanczos breakdown: spectral check skipped, MB/FB only";
  }
  return report;
}

Result<std::vector<OracleReport>> CheckAllFilters(
    const sparse::CsrMatrix& norm_adj, const eval::EigenDecomposition& eig,
    const Matrix& x, const OracleOptions& options) {
  std::vector<OracleReport> reports;
  for (const auto& name : filters::AllFilterNames()) {
    SGNN_ASSIGN_OR_RETURN(
        auto report,
        CheckSpectralConformance(name, norm_adj, eig, x, options));
    reports.push_back(std::move(report));
  }
  return reports;
}

bool AllPass(const std::vector<OracleReport>& reports) {
  for (const auto& r : reports) {
    if (!r.pass) return false;
  }
  return true;
}

std::string FormatReports(const std::vector<OracleReport>& reports) {
  std::ostringstream os;
  for (const auto& r : reports) {
    os << (r.pass ? "  ok  " : "FAIL  ") << r.filter << "  rel=" << r.rel_error
       << " mb=" << r.mb_rel_error << " tol=" << r.tolerance;
    if (!r.detail.empty()) os << "  (" << r.detail << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace sgnn::conformance

// Lazy-execution conformance — fused op-graph path vs eager vs the oracle.
//
// The lazy op-graph (src/opgraph/, docs/OPGRAPH.md) promises bit-identical
// results to the eager filters it mirrors while fusing SpMM chains and
// planning buffers. This check enforces both halves of that contract for
// every Table 1 filter with lazy support:
//   * bit-identity: LazyForward output and every LazyPrecompute term must
//     match the eager Forward/Precompute byte for byte (memcmp, not a
//     tolerance), and
//   * spectral correctness: the lazy forward must sit within the same
//     dense eigendecomposition oracle tolerance (oracle.h) that gates the
//     eager path — the fused kernels cannot trade accuracy for speed.
// Filters without lazy recording (Bernstein, OptBasis, product forms) are
// reported as skipped passes.

#ifndef SGNN_CONFORMANCE_LAZY_CHECK_H_
#define SGNN_CONFORMANCE_LAZY_CHECK_H_

#include <string>
#include <vector>

#include "conformance/oracle.h"
#include "eval/eigen.h"
#include "sparse/csr.h"
#include "tensor/matrix.h"
#include "tensor/status.h"

namespace sgnn::conformance {

/// Outcome of one lazy-vs-eager-vs-oracle comparison.
struct LazyReport {
  std::string filter;
  double rel_error = 0.0;        ///< lazy forward vs dense oracle
  double eager_rel_error = 0.0;  ///< eager forward vs dense oracle (context)
  double tolerance = 0.0;        ///< OracleTolerance(filter)
  bool bit_identical = false;    ///< lazy ≡ eager forward, byte for byte
  /// Lazy ≡ eager precompute terms, byte for byte (true for FB-only).
  bool precompute_bit_identical = false;
  int fused_chains = 0;          ///< SpMM chains collapsed by fusion
  bool skipped = false;          ///< filter has no lazy recording
  bool pass = false;
  std::string detail;
};

/// Runs `filter_name` eagerly and lazily on the host, asserts bit-identity
/// of forward (and precompute, when MB-capable), and gates the fused result
/// against the dense spectral reference. InvalidArgument for unknown
/// filters or mismatched shapes.
[[nodiscard]] Result<LazyReport> CheckLazyConformance(
    const std::string& filter_name, const sparse::CsrMatrix& norm_adj,
    const eval::EigenDecomposition& eig, const Matrix& x,
    const OracleOptions& options = {});

/// CheckLazyConformance over all taxonomy filters (eager-only ones report
/// as skipped passes).
[[nodiscard]] Result<std::vector<LazyReport>> CheckAllLazy(
    const sparse::CsrMatrix& norm_adj, const eval::EigenDecomposition& eig,
    const Matrix& x, const OracleOptions& options = {});

/// True when every report passed.
bool AllLazyPass(const std::vector<LazyReport>& reports);

/// One line per report, failures marked.
std::string FormatLazyReports(const std::vector<LazyReport>& reports);

}  // namespace sgnn::conformance

#endif  // SGNN_CONFORMANCE_LAZY_CHECK_H_

// Property-based graph fuzzing for the conformance oracle.
//
// Every trial is derived deterministically from a single uint64 seed:
// seed → graph family (ER / SBM / star / path / cycle / disconnected /
// self-loop / isolated-node / empty), topology, hop count, and features.
// A failing trial therefore reproduces from the seed alone
// (`sgnn_conformance --seed=N`), and the seed is journaled through
// runtime::Supervisor so an interrupted fuzz sweep resumes without
// re-running completed trials.
//
// Failures are shrunk with a delta-debugging loop (drop node ranges, drop
// edge chunks, lower the hop count) to a minimal case that still fails,
// printed via FormatCase.
//
// ρ is pinned to 0.5: the dense oracle U g(Λ) Uᵀ is only the propagation
// operator under symmetric normalization (docs/CONFORMANCE.md).

#ifndef SGNN_CONFORMANCE_FUZZ_H_
#define SGNN_CONFORMANCE_FUZZ_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/supervisor.h"
#include "sparse/adjacency.h"

namespace sgnn::conformance {

/// One generated conformance trial.
struct FuzzCase {
  uint64_t seed = 0;       ///< generator seed (repro key)
  std::string family;      ///< graph family name
  int64_t n = 0;           ///< node count
  sparse::EdgeList edges;  ///< undirected edge list
  bool self_loops = true;  ///< add self loops when building Ā
  int hops = 4;            ///< filter order K
  double rho = 0.5;        ///< normalization exponent (oracle requires 0.5)
};

/// Outcome of checking one case.
struct TrialResult {
  bool pass = true;
  std::string detail;  ///< failing filters / error text
};

/// Checks a case; returns pass/fail plus detail.
using CaseCheck = std::function<TrialResult(const FuzzCase&)>;

/// Aggregate over a fuzz sweep.
struct FuzzFailure {
  uint64_t seed = 0;
  std::string family;
  std::string detail;
  FuzzCase minimal;  ///< shrunk repro
};

struct FuzzReport {
  int trials = 0;
  int failures = 0;
  int resumed = 0;  ///< trials served from the journal
  std::vector<FuzzFailure> failing;
};

/// Knobs for a fuzz sweep.
struct FuzzOptions {
  uint64_t base_seed = 1;
  int trials = 50;
  /// Filter subset to check per trial; empty = all 27.
  std::vector<std::string> filters;
  /// Shrink failing cases (bounded delta-debugging budget).
  bool shrink = true;
  int shrink_budget = 256;
};

/// Deterministic seed → case mapping.
FuzzCase CaseFromSeed(uint64_t seed);

/// Human-readable dump: family, seed, n, hops, edge list.
std::string FormatCase(const FuzzCase& c);

/// Default property: every taxonomy filter (or `filters` subset) matches
/// the dense spectral oracle and the FD gradient check on this graph.
TrialResult CheckCaseAgainstOracle(const FuzzCase& c,
                                   const std::vector<std::string>& filters);

/// Greedily shrinks a failing case: node-range removal, edge-chunk removal,
/// then hop reduction, keeping any mutation for which `check` still fails.
/// `budget` bounds total check invocations.
FuzzCase ShrinkCase(FuzzCase c, const CaseCheck& check, int budget = 256);

/// Runs `options.trials` seeded trials. When `supervisor` is non-null each
/// trial is journaled as a cell (dataset=family, seed=trial seed) and
/// already-terminal trials are skipped on resume. `check` overrides the
/// oracle property (used by the shrinker self-test); pass nullptr for the
/// default.
FuzzReport RunFuzz(const FuzzOptions& options, runtime::Supervisor* supervisor,
                   const CaseCheck& check = nullptr);

}  // namespace sgnn::conformance

#endif  // SGNN_CONFORMANCE_FUZZ_H_

// Finite-difference gradient oracle for every manual backward pass.
//
// The repo's backward passes (filters' θ/γ gradients, Linear/Mlp weight and
// bias gradients, loss dL/dlogits, filter input gradients) are hand-derived.
// This checker perturbs each parameter block coordinate-wise and compares a
// Richardson-extrapolated central difference against the analytic gradient,
// reporting the max relative error per block.
//
// The forward path is float32, so a naive central difference at tiny h is
// drowned by rounding noise. Three measures keep the check sharp enough for
// the 1e-4 acceptance bar:
//   * a large scaled step h = step · max(1, |θ|) — truncation error is then
//     removed by Richardson extrapolation over h and h/2 (error O(h⁴));
//   * the effective step is recomputed from the values actually stored
//     after rounding (θ⁺ - θ⁻ as represented, not 2h as requested);
//   * the scalar loss is accumulated in double (ops::Dot / the double loss
//     returns), so only the float32 representation of intermediate tensors
//     contributes noise.
//
// Known straight-through blocks are restricted rather than skipped wholesale:
// favard checks only its θ block (the learned basis params a/b deliberately
// receive zero gradients), and optbasis skips the input-gradient block (its
// basis is treated as constant w.r.t. x by design).

#ifndef SGNN_CONFORMANCE_GRADCHECK_H_
#define SGNN_CONFORMANCE_GRADCHECK_H_

#include <string>
#include <vector>

#include "sparse/csr.h"
#include "tensor/matrix.h"
#include "tensor/status.h"

namespace sgnn::conformance {

/// Knobs for one gradient-check run.
struct GradCheckOptions {
  int hops = 5;
  double tolerance = 1e-4;
  /// Base relative FD step (scaled by max(1, |θ|) per coordinate).
  double step = 0.0625;
  /// Coordinates probed per block; larger blocks are subsampled
  /// deterministically from `seed`.
  size_t max_coords = 48;
  uint64_t seed = 0x5EED5EED;
};

/// Outcome for one parameter block ("ppr/theta", "mlp/layer0/weight", ...).
struct GradBlockReport {
  std::string block;
  size_t checked = 0;  ///< coordinates probed
  double max_rel_error = 0.0;
  double tolerance = 0.0;
  bool pass = false;
  std::string detail;  ///< restriction note or failure reason
};

/// Checks one filter's θ/γ block and its input-gradient block against FD on
/// the loss L = <W, Forward(x)> with a fixed random W.
[[nodiscard]] Result<std::vector<GradBlockReport>> CheckFilterGradients(
    const std::string& filter_name, const sparse::CsrMatrix& norm_adj,
    const Matrix& x, const GradCheckOptions& options = {});

/// Checks every Linear weight/bias block and the input gradient of a small
/// 2-layer Mlp (dropout 0 — the FD loss must be deterministic) under
/// softmax cross-entropy.
std::vector<GradBlockReport> CheckMlpGradients(
    const GradCheckOptions& options = {});

/// Checks dL/dlogits of SoftmaxCrossEntropy (full and masked rows),
/// BceWithLogits, and MseLoss against FD on the loss value itself.
std::vector<GradBlockReport> CheckLossGradients(
    const GradCheckOptions& options = {});

/// All learnable blocks: every taxonomy filter + Mlp + losses.
[[nodiscard]] Result<std::vector<GradBlockReport>> CheckAllGradients(
    const sparse::CsrMatrix& norm_adj, const Matrix& x,
    const GradCheckOptions& options = {});

/// True when every block passed.
bool AllPass(const std::vector<GradBlockReport>& reports);

/// One line per block, failures marked.
std::string FormatReports(const std::vector<GradBlockReport>& reports);

}  // namespace sgnn::conformance

#endif  // SGNN_CONFORMANCE_GRADCHECK_H_

// Sharded-execution conformance — sharded propagation vs unsharded vs the
// dense oracle.
//
// Sharded execution (src/shard/, docs/SHARDING.md) promises that
// partitioned propagation — edge-cut shards, halo exchange, ordered merge —
// is *bit-identical* to the single-CSR path at any shard count, for both
// the eager filters and the lazy op-graph. This check enforces that
// contract for every Table 1 filter:
//   * bit-identity: sharded eager Forward, sharded LazyForward (when the
//     filter records lazily), and every sharded Precompute term must match
//     their unsharded counterparts byte for byte (memcmp, never a
//     tolerance), at each requested shard count, and
//   * spectral correctness: the sharded forward must sit within the same
//     dense eigendecomposition oracle tolerance (oracle.h) that gates the
//     unsharded path.

#ifndef SGNN_CONFORMANCE_SHARD_CHECK_H_
#define SGNN_CONFORMANCE_SHARD_CHECK_H_

#include <string>
#include <vector>

#include "conformance/oracle.h"
#include "eval/eigen.h"
#include "sparse/csr.h"
#include "tensor/matrix.h"
#include "tensor/status.h"

namespace sgnn::conformance {

/// Outcome of one sharded-vs-unsharded-vs-oracle comparison.
struct ShardReport {
  std::string filter;
  std::vector<int> shard_counts;  ///< K values exercised
  double rel_error = 0.0;         ///< sharded forward vs dense oracle (max over K)
  double tolerance = 0.0;         ///< OracleTolerance(filter)
  bool forward_bit_identical = false;   ///< eager sharded ≡ unsharded, every K
  bool lazy_bit_identical = false;      ///< lazy sharded ≡ unsharded (true when eager-only)
  bool precompute_bit_identical = false;  ///< terms sharded ≡ unsharded (true for FB-only)
  bool skipped = false;  ///< dense reference undefined (lanczos breakdown)
  bool pass = false;
  std::string detail;
};

/// Runs `filter_name` unsharded and sharded at each K in `shard_counts`
/// (host compute; the Device tag never changes bits), asserts bit-identity
/// of forward / lazy forward / precompute terms, and gates the sharded
/// result against the dense spectral reference. InvalidArgument for unknown
/// filters or mismatched shapes.
[[nodiscard]] Result<ShardReport> CheckShardConformance(
    const std::string& filter_name, const sparse::CsrMatrix& norm_adj,
    const eval::EigenDecomposition& eig, const Matrix& x,
    const std::vector<int>& shard_counts = {1, 2, 4, 8},
    const OracleOptions& options = {});

/// CheckShardConformance over all taxonomy filters.
[[nodiscard]] Result<std::vector<ShardReport>> CheckAllSharded(
    const sparse::CsrMatrix& norm_adj, const eval::EigenDecomposition& eig,
    const Matrix& x, const std::vector<int>& shard_counts = {1, 2, 4, 8},
    const OracleOptions& options = {});

/// True when every report passed.
bool AllShardPass(const std::vector<ShardReport>& reports);

/// One line per report, failures marked.
std::string FormatShardReports(const std::vector<ShardReport>& reports);

}  // namespace sgnn::conformance

#endif  // SGNN_CONFORMANCE_SHARD_CHECK_H_

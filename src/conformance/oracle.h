// Spectral conformance oracle — dense eigendecomposition ground truth.
//
// For a small graph the normalized Laplacian L̃ = I - Ã can be
// eigendecomposed exactly (eval::JacobiEigen), turning every Table 1 filter
// into a closed-form operator U g(Λ) Uᵀ. The oracle runs each filter's
// *implemented* sparse propagation path (core/ + sparse/) against that dense
// reference in double precision and reports a relative Frobenius error, so
// a basis recurrence, coefficient schedule, or SpMM kernel that drifts from
// the paper's math fails loudly instead of silently skewing benchmark rows.
//
// Two filters need more than the scalar Response(λ):
//   * adagnn applies a per-channel product Π_k (1 - γ_{k,f} λ); its scalar
//     Response() is feature-averaged, so the oracle evaluates the exact
//     per-channel form from the live γ parameters.
//   * optbasis realizes a data-dependent Lanczos basis; the oracle mirrors
//     the three-term recurrence in double precision. Near a Lanczos
//     breakdown (Krylov subspace exhausted, β ≈ 0) the basis direction is
//     numerically undefined, so the spectral comparison is skipped and only
//     the FB/MB consistency check applies (report.degenerate_basis).
//
// Valid only at ρ = 0.5: the generalized normalization is non-symmetric for
// other ρ and U g(Λ) Uᵀ is not the propagation operator.

#ifndef SGNN_CONFORMANCE_ORACLE_H_
#define SGNN_CONFORMANCE_ORACLE_H_

#include <string>
#include <vector>

#include "core/registry.h"
#include "eval/eigen.h"
#include "sparse/csr.h"
#include "tensor/matrix.h"
#include "tensor/status.h"

namespace sgnn::conformance {

/// Per-check knobs.
struct OracleOptions {
  int hops = 6;
  filters::FilterHyperParams hp;
  /// Also check the mini-batch path (Precompute + CombineTerms) against the
  /// full-batch Forward for filters that support it.
  bool check_minibatch = true;
};

/// Outcome of one filter-vs-oracle comparison.
struct OracleReport {
  std::string filter;
  double rel_error = 0.0;     ///< ‖y - U g(Λ) Uᵀ x‖_F / max(1, ‖ref‖_F)
  double mb_rel_error = 0.0;  ///< MB combine vs FB forward (0 when FB-only)
  double tolerance = 0.0;
  bool degenerate_basis = false;  ///< optbasis Lanczos breakdown detected
  bool pass = false;
  std::string detail;  ///< human-readable failure / skip reason
};

/// Documented per-filter tolerance (docs/CONFORMANCE.md). Default 2e-3;
/// looser for bases with higher float32 error accumulation.
double OracleTolerance(const std::string& filter_name);

/// ‖a - b‖_F / max(1, ‖b‖_F), accumulated in double. The unit floor keeps
/// near-zero references (e.g. high-pass filters on smooth signals) from
/// turning float noise into huge relative errors. Shared by the oracle and
/// the quantization conformance check (quant_check.h).
double RelativeFrobenius(const Matrix& a, const Matrix& b);

/// The dense double-precision ground truth U g(Λ) Uᵀ x for `filter` —
/// adagnn gets its exact per-channel product form and optbasis its
/// double-precision Lanczos mirror (both documented in the header comment).
/// Sets *degenerate on an optbasis Lanczos breakdown, in which case the
/// returned reference is meaningless and must not be compared against.
Matrix DenseReference(filters::SpectralFilter* filter,
                      const std::string& filter_name,
                      const sparse::CsrMatrix& norm_adj,
                      const eval::EigenDecomposition& eig, const Matrix& x,
                      int hops, bool* degenerate);

/// Runs `filter_name`'s sparse propagation on (norm_adj, x) and compares it
/// against the dense spectral operator built from `eig` (the
/// eigendecomposition of DenseLaplacian(norm_adj)). Returns InvalidArgument
/// for unknown filters or mismatched shapes.
[[nodiscard]] Result<OracleReport> CheckSpectralConformance(
    const std::string& filter_name, const sparse::CsrMatrix& norm_adj,
    const eval::EigenDecomposition& eig, const Matrix& x,
    const OracleOptions& options = {});

/// CheckSpectralConformance over all 27 taxonomy filters.
[[nodiscard]] Result<std::vector<OracleReport>> CheckAllFilters(
    const sparse::CsrMatrix& norm_adj, const eval::EigenDecomposition& eig,
    const Matrix& x, const OracleOptions& options = {});

/// True when every report passed.
bool AllPass(const std::vector<OracleReport>& reports);

/// One line per report, failures marked.
std::string FormatReports(const std::vector<OracleReport>& reports);

}  // namespace sgnn::conformance

#endif  // SGNN_CONFORMANCE_ORACLE_H_

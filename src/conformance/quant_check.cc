#include "conformance/quant_check.h"

#include <sstream>
#include <utility>

#include "core/registry.h"

namespace sgnn::conformance {

double QuantTolerance(const std::string& filter_name, quant::Precision p) {
  // fp16 rounds each stored term value at ~2^-11 relative; the combine sum
  // stays well inside 4e-3 extra for every basis. int8's per-channel step is
  // scale = clip/127, so each term carries up to clip/254 absolute error and
  // the K-term combine adds them — 3e-2 of slack bounds every Table 1 MB
  // filter at the conformance graph size (measured table in
  // docs/QUANTIZATION.md).
  const double base = OracleTolerance(filter_name);
  switch (p) {
    case quant::Precision::kFp16:
      return base + 4e-3;
    case quant::Precision::kInt8:
      return base + 3e-2;
    case quant::Precision::kFp32:
      return base;
  }
  return base;
}

Result<QuantReport> CheckQuantConformance(const std::string& filter_name,
                                          const sparse::CsrMatrix& norm_adj,
                                          const eval::EigenDecomposition& eig,
                                          const Matrix& x,
                                          quant::Precision precision,
                                          const quant::CalibConfig& calib,
                                          const OracleOptions& options) {
  if (precision == quant::Precision::kFp32) {
    return Status::InvalidArgument(
        "quant conformance: kFp32 has nothing to check (use the fp oracle)");
  }
  if (x.rows() != norm_adj.n()) {
    return Status::InvalidArgument("quant conformance: x rows != graph nodes");
  }
  if (static_cast<int64_t>(eig.values.size()) != x.rows()) {
    return Status::InvalidArgument(
        "quant conformance: eigendecomposition size mismatch");
  }
  SGNN_ASSIGN_OR_RETURN(
      auto filter,
      filters::CreateFilter(filter_name, options.hops, options.hp, x.cols()));

  QuantReport report;
  report.filter = filter_name;
  report.precision = precision;
  report.tolerance = QuantTolerance(filter_name, precision);

  if (!filter->SupportsMiniBatch()) {
    report.skipped = true;
    report.pass = true;
    report.detail = "full-batch only: no MB artifact to quantize";
    return report;
  }

  filters::FilterContext ctx;
  ctx.prop = &norm_adj;
  ctx.device = Device::kHost;

  std::vector<Matrix> terms;
  SGNN_RETURN_IF_ERROR(filter->Precompute(ctx, x, &terms));

  // Quantize + dequantize each term: exactly what the serving layer's
  // dequantize-on-load path feeds CombineTerms.
  std::vector<Matrix> dq_terms;
  dq_terms.reserve(terms.size());
  for (const Matrix& t : terms) {
    SGNN_ASSIGN_OR_RETURN(auto q, quant::Quantize(t, precision, calib));
    Matrix back(t.rows(), t.cols(), Device::kHost);
    quant::Dequantize(q, &back);
    dq_terms.push_back(std::move(back));
  }

  std::vector<const Matrix*> fp_ptrs;
  std::vector<const Matrix*> dq_ptrs;
  fp_ptrs.reserve(terms.size());
  dq_ptrs.reserve(terms.size());
  for (const auto& t : terms) fp_ptrs.push_back(&t);
  for (const auto& t : dq_terms) dq_ptrs.push_back(&t);

  Matrix y_fp;
  filter->CombineTerms(fp_ptrs, &y_fp, /*cache=*/false);
  Matrix y_q;
  filter->CombineTerms(dq_ptrs, &y_q, /*cache=*/false);

  // The dense reference must come after a combine: data-dependent bases
  // (optbasis) size their θ lazily on first use, and the double-precision
  // reference reads those live parameters.
  bool degenerate = false;
  const Matrix ref = DenseReference(filter.get(), filter_name, norm_adj, eig,
                                    x, options.hops, &degenerate);
  if (degenerate) {
    report.skipped = true;
    report.pass = true;
    report.detail = "lanczos breakdown: dense reference undefined";
    return report;
  }

  report.fp_rel_error = RelativeFrobenius(y_fp, ref);
  report.rel_error = RelativeFrobenius(y_q, ref);
  report.pass = report.rel_error <= report.tolerance;
  if (!report.pass) {
    report.detail = "quantized combine diverges from dense spectral operator";
  }
  return report;
}

Result<std::vector<QuantReport>> CheckAllQuant(
    const sparse::CsrMatrix& norm_adj, const eval::EigenDecomposition& eig,
    const Matrix& x, quant::Precision precision,
    const quant::CalibConfig& calib, const OracleOptions& options) {
  std::vector<QuantReport> reports;
  for (const auto& name : filters::AllFilterNames()) {
    SGNN_ASSIGN_OR_RETURN(auto report,
                          CheckQuantConformance(name, norm_adj, eig, x,
                                                precision, calib, options));
    reports.push_back(std::move(report));
  }
  return reports;
}

bool AllQuantPass(const std::vector<QuantReport>& reports) {
  for (const auto& r : reports) {
    if (!r.pass) return false;
  }
  return true;
}

std::string FormatQuantReports(const std::vector<QuantReport>& reports) {
  std::ostringstream os;
  for (const auto& r : reports) {
    os << (r.pass ? "  ok  " : "FAIL  ") << r.filter << "  "
       << quant::PrecisionName(r.precision) << "  rel=" << r.rel_error
       << " fp=" << r.fp_rel_error << " tol=" << r.tolerance;
    if (!r.detail.empty()) os << "  (" << r.detail << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace sgnn::conformance

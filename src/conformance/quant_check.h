// Quantization conformance — quantized MB propagation vs the dense oracle.
//
// The serving layer quantizes the frozen MB artifact (precomputed per-hop
// terms, φ1 weights, θ) to int8 or fp16 (src/quant/). This check closes the
// loop against the same dense eigendecomposition ground truth the fp oracle
// uses (oracle.h): for every Table 1 filter that supports the mini-batch
// path it runs Precompute, quantizes each term per-channel under the given
// calibration, dequantizes, and compares CombineTerms over the *quantized*
// terms against U g(Λ) Uᵀ x in double precision. The documented tolerance
// is the fp oracle tolerance plus a precision-dependent slack
// (docs/QUANTIZATION.md "Conformance" table) — quantization must cost a
// bounded, predictable amount of accuracy on top of float32 itself.
//
// Full-batch-only filters are reported as skipped passes (there is no MB
// artifact to quantize), as is an optbasis Lanczos breakdown (the dense
// reference direction is undefined, same rule as the fp oracle).

#ifndef SGNN_CONFORMANCE_QUANT_CHECK_H_
#define SGNN_CONFORMANCE_QUANT_CHECK_H_

#include <string>
#include <vector>

#include "conformance/oracle.h"
#include "eval/eigen.h"
#include "quant/quantize.h"
#include "sparse/csr.h"
#include "tensor/matrix.h"
#include "tensor/status.h"

namespace sgnn::conformance {

/// Outcome of one quantized-propagation-vs-oracle comparison.
struct QuantReport {
  std::string filter;
  quant::Precision precision = quant::Precision::kInt8;
  double rel_error = 0.0;     ///< quantized MB combine vs dense oracle
  double fp_rel_error = 0.0;  ///< fp MB combine vs dense oracle (context)
  double tolerance = 0.0;     ///< QuantTolerance(filter, precision)
  bool skipped = false;       ///< FB-only filter or Lanczos breakdown
  bool pass = false;
  std::string detail;
};

/// Documented tolerance for quantized propagation: the fp oracle tolerance
/// plus a per-precision slack (fp16 ~1e-3 relative rounding; int8 ~1/254
/// per-channel step, amplified by the hop-sum). Table in
/// docs/QUANTIZATION.md.
double QuantTolerance(const std::string& filter_name, quant::Precision p);

/// Quantizes `filter_name`'s precomputed MB terms at `precision` under
/// `calib`, combines them, and compares against the dense spectral
/// reference. InvalidArgument for unknown filters, mismatched shapes, or
/// kFp32 (nothing to check).
[[nodiscard]] Result<QuantReport> CheckQuantConformance(
    const std::string& filter_name, const sparse::CsrMatrix& norm_adj,
    const eval::EigenDecomposition& eig, const Matrix& x,
    quant::Precision precision, const quant::CalibConfig& calib = {},
    const OracleOptions& options = {});

/// CheckQuantConformance over all taxonomy filters (FB-only ones report as
/// skipped passes).
[[nodiscard]] Result<std::vector<QuantReport>> CheckAllQuant(
    const sparse::CsrMatrix& norm_adj, const eval::EigenDecomposition& eig,
    const Matrix& x, quant::Precision precision,
    const quant::CalibConfig& calib = {}, const OracleOptions& options = {});

/// True when every report passed.
bool AllQuantPass(const std::vector<QuantReport>& reports);

/// One line per report, failures marked.
std::string FormatQuantReports(const std::vector<QuantReport>& reports);

}  // namespace sgnn::conformance

#endif  // SGNN_CONFORMANCE_QUANT_CHECK_H_

#include "conformance/shard_check.h"

#include <cstring>
#include <sstream>
#include <utility>

#include "core/lazy.h"
#include "core/registry.h"
#include "shard/plan.h"
#include "shard/spmm.h"

namespace sgnn::conformance {

namespace {

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data(), b.data(), a.bytes()) == 0;
}

}  // namespace

Result<ShardReport> CheckShardConformance(const std::string& filter_name,
                                          const sparse::CsrMatrix& norm_adj,
                                          const eval::EigenDecomposition& eig,
                                          const Matrix& x,
                                          const std::vector<int>& shard_counts,
                                          const OracleOptions& options) {
  if (x.rows() != norm_adj.n()) {
    return Status::InvalidArgument("shard conformance: x rows != graph nodes");
  }
  if (static_cast<int64_t>(eig.values.size()) != x.rows()) {
    return Status::InvalidArgument(
        "shard conformance: eigendecomposition size mismatch");
  }
  SGNN_ASSIGN_OR_RETURN(
      auto filter,
      filters::CreateFilter(filter_name, options.hops, options.hp, x.cols()));

  ShardReport report;
  report.filter = filter_name;
  report.shard_counts = shard_counts;
  report.tolerance = OracleTolerance(filter_name);
  report.forward_bit_identical = true;
  report.lazy_bit_identical = true;
  report.precompute_bit_identical = true;

  filters::FilterContext ctx;
  ctx.prop = &norm_adj;
  ctx.device = Device::kHost;

  // Unsharded baselines.
  Matrix y_base;
  filter->Forward(ctx, x, &y_base, /*cache=*/false);
  std::vector<Matrix> terms_base;
  if (filter->SupportsMiniBatch()) {
    SGNN_RETURN_IF_ERROR(filter->Precompute(ctx, x, &terms_base));
  }

  Matrix y_sharded;  // last sharded forward, for the oracle gate
  for (const int k : shard_counts) {
    const shard::ShardPlan plan = shard::BuildShardPlan(
        norm_adj, shard::PartitionOptions{k, /*seed=*/7});
    const shard::ShardedSpmmOperator op(&plan);
    filters::FilterContext sharded_ctx = ctx;
    sharded_ctx.op = &op;

    Matrix y_k;
    filter->Forward(sharded_ctx, x, &y_k, /*cache=*/false);
    if (!BitIdentical(y_base, y_k)) {
      report.forward_bit_identical = false;
      report.detail = "eager forward differs at K=" + std::to_string(k);
    }
    y_sharded = std::move(y_k);

    if (filter->SupportsLazy()) {
      Matrix y_lazy;
      SGNN_RETURN_IF_ERROR(
          filters::LazyForward(filter.get(), sharded_ctx, x, &y_lazy));
      if (!BitIdentical(y_base, y_lazy)) {
        report.lazy_bit_identical = false;
        report.detail = "lazy forward differs at K=" + std::to_string(k);
      }
    }

    if (filter->SupportsMiniBatch()) {
      std::vector<Matrix> terms_k;
      SGNN_RETURN_IF_ERROR(filter->Precompute(sharded_ctx, x, &terms_k));
      bool same = terms_k.size() == terms_base.size();
      for (size_t i = 0; same && i < terms_k.size(); ++i) {
        same = BitIdentical(terms_base[i], terms_k[i]);
      }
      if (!same) {
        report.precompute_bit_identical = false;
        report.detail = "precompute terms differ at K=" + std::to_string(k);
      }
    }
  }

  bool degenerate = false;
  const Matrix ref = DenseReference(filter.get(), filter_name, norm_adj, eig,
                                    x, options.hops, &degenerate);
  if (degenerate) {
    report.skipped = true;
    report.pass = report.forward_bit_identical && report.lazy_bit_identical &&
                  report.precompute_bit_identical;
    if (report.pass) {
      report.detail = "lanczos breakdown: dense reference undefined";
    }
    return report;
  }

  report.rel_error = RelativeFrobenius(y_sharded, ref);
  report.pass = report.forward_bit_identical && report.lazy_bit_identical &&
                report.precompute_bit_identical &&
                report.rel_error <= report.tolerance;
  if (report.pass) {
    report.detail.clear();
  } else if (report.forward_bit_identical && report.lazy_bit_identical &&
             report.precompute_bit_identical) {
    report.detail = "sharded forward diverges from dense spectral operator";
  }
  return report;
}

Result<std::vector<ShardReport>> CheckAllSharded(
    const sparse::CsrMatrix& norm_adj, const eval::EigenDecomposition& eig,
    const Matrix& x, const std::vector<int>& shard_counts,
    const OracleOptions& options) {
  std::vector<ShardReport> reports;
  for (const auto& name : filters::AllFilterNames()) {
    SGNN_ASSIGN_OR_RETURN(
        auto report,
        CheckShardConformance(name, norm_adj, eig, x, shard_counts, options));
    reports.push_back(std::move(report));
  }
  return reports;
}

bool AllShardPass(const std::vector<ShardReport>& reports) {
  for (const auto& r : reports) {
    if (!r.pass) return false;
  }
  return true;
}

std::string FormatShardReports(const std::vector<ShardReport>& reports) {
  std::ostringstream os;
  for (const auto& r : reports) {
    os << (r.pass ? "  ok  " : "FAIL  ") << r.filter << "  K={";
    for (size_t i = 0; i < r.shard_counts.size(); ++i) {
      os << (i > 0 ? "," : "") << r.shard_counts[i];
    }
    os << "}  fwd=" << (r.forward_bit_identical ? "exact" : "DIFF")
       << " lazy=" << (r.lazy_bit_identical ? "exact" : "DIFF")
       << " pre=" << (r.precompute_bit_identical ? "exact" : "DIFF");
    if (!r.skipped) {
      os << " rel=" << r.rel_error << " tol=" << r.tolerance;
    }
    if (!r.detail.empty()) os << "  (" << r.detail << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace sgnn::conformance

#include "conformance/lazy_check.h"

#include <cstring>
#include <sstream>
#include <utility>

#include "core/lazy.h"
#include "core/registry.h"

namespace sgnn::conformance {

namespace {

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data(), b.data(), a.bytes()) == 0;
}

}  // namespace

Result<LazyReport> CheckLazyConformance(const std::string& filter_name,
                                        const sparse::CsrMatrix& norm_adj,
                                        const eval::EigenDecomposition& eig,
                                        const Matrix& x,
                                        const OracleOptions& options) {
  if (x.rows() != norm_adj.n()) {
    return Status::InvalidArgument("lazy conformance: x rows != graph nodes");
  }
  if (static_cast<int64_t>(eig.values.size()) != x.rows()) {
    return Status::InvalidArgument(
        "lazy conformance: eigendecomposition size mismatch");
  }
  SGNN_ASSIGN_OR_RETURN(
      auto filter,
      filters::CreateFilter(filter_name, options.hops, options.hp, x.cols()));

  LazyReport report;
  report.filter = filter_name;
  report.tolerance = OracleTolerance(filter_name);

  if (!filter->SupportsLazy()) {
    report.skipped = true;
    report.pass = true;
    report.bit_identical = true;
    report.precompute_bit_identical = true;
    report.detail = "eager-only: no lazy op-graph recording";
    return report;
  }

  filters::FilterContext ctx;
  ctx.prop = &norm_adj;
  ctx.device = Device::kHost;

  Matrix y_eager;
  filter->Forward(ctx, x, &y_eager, /*cache=*/false);
  Matrix y_lazy;
  opgraph::PipelineStats stats;
  SGNN_RETURN_IF_ERROR(
      filters::LazyForward(filter.get(), ctx, x, &y_lazy, &stats));
  report.fused_chains = stats.fused_spmm_chains;
  report.bit_identical = BitIdentical(y_eager, y_lazy);

  report.precompute_bit_identical = true;
  if (filter->SupportsMiniBatch()) {
    std::vector<Matrix> eager_terms;
    SGNN_RETURN_IF_ERROR(filter->Precompute(ctx, x, &eager_terms));
    std::vector<Matrix> lazy_terms;
    SGNN_RETURN_IF_ERROR(
        filters::LazyPrecompute(filter.get(), ctx, x, &lazy_terms));
    report.precompute_bit_identical =
        eager_terms.size() == lazy_terms.size();
    for (size_t i = 0;
         report.precompute_bit_identical && i < eager_terms.size(); ++i) {
      report.precompute_bit_identical =
          BitIdentical(eager_terms[i], lazy_terms[i]);
    }
  }

  bool degenerate = false;
  const Matrix ref = DenseReference(filter.get(), filter_name, norm_adj, eig,
                                    x, options.hops, &degenerate);
  if (degenerate) {
    report.skipped = true;
    report.pass = true;
    report.detail = "lanczos breakdown: dense reference undefined";
    return report;
  }

  report.eager_rel_error = RelativeFrobenius(y_eager, ref);
  report.rel_error = RelativeFrobenius(y_lazy, ref);
  report.pass = report.bit_identical && report.precompute_bit_identical &&
                report.rel_error <= report.tolerance;
  if (!report.bit_identical) {
    report.detail = "lazy forward is not bit-identical to eager";
  } else if (!report.precompute_bit_identical) {
    report.detail = "lazy precompute terms are not bit-identical to eager";
  } else if (!report.pass) {
    report.detail = "fused forward diverges from dense spectral operator";
  }
  return report;
}

Result<std::vector<LazyReport>> CheckAllLazy(const sparse::CsrMatrix& norm_adj,
                                             const eval::EigenDecomposition& eig,
                                             const Matrix& x,
                                             const OracleOptions& options) {
  std::vector<LazyReport> reports;
  for (const auto& name : filters::AllFilterNames()) {
    SGNN_ASSIGN_OR_RETURN(
        auto report, CheckLazyConformance(name, norm_adj, eig, x, options));
    reports.push_back(std::move(report));
  }
  return reports;
}

bool AllLazyPass(const std::vector<LazyReport>& reports) {
  for (const auto& r : reports) {
    if (!r.pass) return false;
  }
  return true;
}

std::string FormatLazyReports(const std::vector<LazyReport>& reports) {
  std::ostringstream os;
  for (const auto& r : reports) {
    os << (r.pass ? "  ok  " : "FAIL  ") << r.filter;
    if (r.skipped) {
      os << "  (" << r.detail << ")\n";
      continue;
    }
    os << "  bits=" << (r.bit_identical ? "exact" : "DIFF")
       << " pre=" << (r.precompute_bit_identical ? "exact" : "DIFF")
       << " rel=" << r.rel_error << " eager=" << r.eager_rel_error
       << " tol=" << r.tolerance << " fused=" << r.fused_chains;
    if (!r.detail.empty()) os << "  (" << r.detail << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace sgnn::conformance

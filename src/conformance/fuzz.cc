#include "conformance/fuzz.h"

#include <algorithm>
#include <sstream>

#include "conformance/gradcheck.h"
#include "conformance/oracle.h"
#include "eval/eigen.h"
#include "tensor/rng.h"

namespace sgnn::conformance {
namespace {

FuzzCase RestrictNodes(const FuzzCase& c, int64_t keep) {
  FuzzCase t = c;
  t.n = keep;
  t.edges.clear();
  for (const auto& e : c.edges) {
    if (e.first < keep && e.second < keep) t.edges.push_back(e);
  }
  return t;
}

FuzzCase DropEdgeRange(const FuzzCase& c, size_t start, size_t len) {
  FuzzCase t = c;
  t.edges.clear();
  for (size_t i = 0; i < c.edges.size(); ++i) {
    if (i >= start && i < start + len) continue;
    t.edges.push_back(c.edges[i]);
  }
  return t;
}

void ErdosRenyi(Rng* rng, int64_t n, double p, sparse::EdgeList* edges,
                int64_t offset = 0) {
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      if (rng->Bernoulli(p)) {
        edges->emplace_back(static_cast<int32_t>(offset + i),
                            static_cast<int32_t>(offset + j));
      }
    }
  }
}

}  // namespace

FuzzCase CaseFromSeed(uint64_t seed) {
  FuzzCase c;
  c.seed = seed;
  // Mix the seed so consecutive trial seeds produce unrelated streams.
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x632BE59BD9B4E019ULL);
  static const char* kFamilies[] = {"er",           "sbm",       "star",
                                    "path",         "cycle",     "disconnected",
                                    "self_loop",    "isolated",  "empty"};
  c.family = kFamilies[rng.UniformInt(9)];
  c.hops = 2 + static_cast<int>(rng.UniformInt(6));  // K ∈ [2, 7]
  c.rho = 0.5;                                       // oracle precondition
  c.self_loops = true;
  if (c.family == "er") {
    c.n = 6 + static_cast<int64_t>(rng.UniformInt(30));
    ErdosRenyi(&rng, c.n, rng.Uniform(0.1, 0.4), &c.edges);
  } else if (c.family == "sbm") {
    const int64_t half = 4 + static_cast<int64_t>(rng.UniformInt(12));
    c.n = 2 * half;
    for (int64_t i = 0; i < c.n; ++i) {
      for (int64_t j = i + 1; j < c.n; ++j) {
        const bool same = (i < half) == (j < half);
        if (rng.Bernoulli(same ? 0.4 : 0.05)) {
          c.edges.emplace_back(static_cast<int32_t>(i),
                               static_cast<int32_t>(j));
        }
      }
    }
  } else if (c.family == "star") {
    c.n = 3 + static_cast<int64_t>(rng.UniformInt(20));
    for (int64_t i = 1; i < c.n; ++i) {
      c.edges.emplace_back(0, static_cast<int32_t>(i));
    }
  } else if (c.family == "path") {
    c.n = 2 + static_cast<int64_t>(rng.UniformInt(24));
    for (int64_t i = 0; i + 1 < c.n; ++i) {
      c.edges.emplace_back(static_cast<int32_t>(i), static_cast<int32_t>(i + 1));
    }
  } else if (c.family == "cycle") {
    c.n = 3 + static_cast<int64_t>(rng.UniformInt(20));
    for (int64_t i = 0; i < c.n; ++i) {
      c.edges.emplace_back(static_cast<int32_t>(i),
                           static_cast<int32_t>((i + 1) % c.n));
    }
  } else if (c.family == "disconnected") {
    const int64_t n1 = 3 + static_cast<int64_t>(rng.UniformInt(12));
    const int64_t n2 = 3 + static_cast<int64_t>(rng.UniformInt(12));
    c.n = n1 + n2;
    ErdosRenyi(&rng, n1, 0.4, &c.edges);
    ErdosRenyi(&rng, n2, 0.4, &c.edges, /*offset=*/n1);
  } else if (c.family == "self_loop") {
    // Explicit (i, i) entries on top of the builder's own self-loop pass —
    // exercises deduplication against double self loops.
    c.n = 5 + static_cast<int64_t>(rng.UniformInt(16));
    ErdosRenyi(&rng, c.n, 0.25, &c.edges);
    for (int64_t i = 0; i < c.n; ++i) {
      if (rng.Bernoulli(0.5)) {
        c.edges.emplace_back(static_cast<int32_t>(i), static_cast<int32_t>(i));
      }
    }
  } else if (c.family == "isolated") {
    // Zero-degree rows without self loops: Ã has all-zero rows there.
    const int64_t core = 4 + static_cast<int64_t>(rng.UniformInt(14));
    c.n = core + 1 + static_cast<int64_t>(rng.UniformInt(4));
    ErdosRenyi(&rng, core, 0.4, &c.edges);
    c.self_loops = false;
  } else {  // empty
    c.n = 1 + static_cast<int64_t>(rng.UniformInt(8));
    c.self_loops = rng.Bernoulli(0.5);
  }
  return c;
}

std::string FormatCase(const FuzzCase& c) {
  std::ostringstream os;
  os << "fuzz case seed=" << c.seed << " family=" << c.family << " n=" << c.n
     << " hops=" << c.hops << " rho=" << c.rho
     << " self_loops=" << (c.self_loops ? 1 : 0) << " edges=[";
  for (size_t i = 0; i < c.edges.size(); ++i) {
    if (i > 0) os << ",";
    os << "(" << c.edges[i].first << "," << c.edges[i].second << ")";
  }
  os << "]";
  return os.str();
}

TrialResult CheckCaseAgainstOracle(const FuzzCase& c,
                                   const std::vector<std::string>& filters) {
  auto adj = sparse::BuildAdjacency(c.n, c.edges, c.self_loops);
  if (!adj.ok()) {
    return {false, "build adjacency: " + adj.status().ToString()};
  }
  const sparse::CsrMatrix norm = sparse::NormalizeAdjacency(adj.value(), c.rho);
  const Matrix lap = eval::DenseLaplacian(norm);
  auto eig = eval::JacobiEigen(lap);
  if (!eig.ok()) {
    return {false, "eigendecomposition: " + eig.status().ToString()};
  }
  Rng xrng(c.seed ^ 0xFEEDFACEULL);
  Matrix x(c.n, 3, Device::kHost);
  x.FillNormal(&xrng);

  const std::vector<std::string> names =
      filters.empty() ? filters::AllFilterNames() : filters;
  OracleOptions opt;
  opt.hops = c.hops;
  std::string fails;
  for (const auto& name : names) {
    auto report = CheckSpectralConformance(name, norm, eig.value(), x, opt);
    if (!report.ok()) {
      fails += name + ": " + report.status().ToString() + "; ";
    } else if (!report.value().pass) {
      fails += name + ": " + report.value().detail + "; ";
    }
  }
  // One seed-selected filter per trial also runs the FD gradient check, so
  // the fuzzer exercises backward passes on adversarial topologies without
  // multiplying the trial cost by 27.
  if (!names.empty()) {
    const std::string& gname = names[c.seed % names.size()];
    GradCheckOptions gopt;
    gopt.hops = c.hops;
    gopt.seed = c.seed ^ 0x6AD0;
    auto greports = CheckFilterGradients(gname, norm, x, gopt);
    if (!greports.ok()) {
      fails += gname + "/grad: " + greports.status().ToString() + "; ";
    } else {
      for (const auto& r : greports.value()) {
        if (!r.pass) fails += r.block + ": " + r.detail + "; ";
      }
    }
  }
  return {fails.empty(), fails};
}

FuzzCase ShrinkCase(FuzzCase c, const CaseCheck& check, int budget) {
  auto fails = [&check, &budget](const FuzzCase& t) {
    if (budget <= 0) return false;
    --budget;
    return !check(t).pass;
  };
  bool changed = true;
  while (changed && budget > 0) {
    changed = false;
    // Drop trailing node ranges, halving granularity.
    for (int64_t cut = c.n / 2; cut >= 1; cut /= 2) {
      if (c.n - cut < 1) continue;
      FuzzCase t = RestrictNodes(c, c.n - cut);
      if (fails(t)) {
        c = std::move(t);
        changed = true;
        break;
      }
    }
    if (changed) continue;
    // Drop edge chunks, halving granularity.
    bool edge_removed = false;
    for (size_t chunk = std::max<size_t>(c.edges.size() / 2, 1);
         !c.edges.empty(); chunk = chunk / 2) {
      for (size_t start = 0; start + chunk <= c.edges.size(); start += chunk) {
        FuzzCase t = DropEdgeRange(c, start, chunk);
        if (fails(t)) {
          c = std::move(t);
          edge_removed = true;
          break;
        }
      }
      if (edge_removed || chunk == 1) break;
    }
    if (edge_removed) {
      changed = true;
      continue;
    }
    // Lower the hop count.
    if (c.hops > 1) {
      FuzzCase t = c;
      t.hops = c.hops - 1;
      if (fails(t)) {
        c = std::move(t);
        changed = true;
      }
    }
  }
  return c;
}

FuzzReport RunFuzz(const FuzzOptions& options, runtime::Supervisor* supervisor,
                   const CaseCheck& check) {
  const CaseCheck property =
      check ? check : [&options](const FuzzCase& c) {
        return CheckCaseAgainstOracle(c, options.filters);
      };
  FuzzReport report;
  for (int i = 0; i < options.trials; ++i) {
    const uint64_t seed = options.base_seed + static_cast<uint64_t>(i);
    FuzzCase c = CaseFromSeed(seed);
    ++report.trials;
    TrialResult result;
    if (supervisor != nullptr) {
      runtime::CellKey key(c.family, "conformance", "oracle",
                           static_cast<int>(seed), "fuzz");
      const bool resumed = supervisor->Find(key) != nullptr;
      runtime::CellRecord record = supervisor->Run(key, [&]() {
        result = property(c);
        models::TrainResult tr;
        if (!result.pass) tr.status = Status::Internal(result.detail);
        return tr;
      });
      if (resumed) {
        ++report.resumed;
        result.pass = record.status == runtime::CellStatus::kOk;
        result.detail = record.detail;
      }
    } else {
      result = property(c);
    }
    if (!result.pass) {
      FuzzFailure f;
      f.seed = seed;
      f.family = c.family;
      f.detail = result.detail;
      f.minimal =
          options.shrink ? ShrinkCase(c, property, options.shrink_budget) : c;
      ++report.failures;
      report.failing.push_back(std::move(f));
    }
  }
  return report;
}

}  // namespace sgnn::conformance

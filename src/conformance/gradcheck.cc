#include "conformance/gradcheck.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "core/registry.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace sgnn::conformance {
namespace {

// One perturbable coordinate: get/set through whatever storage (double
// ScalarParams entry or float Matrix cell) the block lives in. `get` reads
// the value as actually stored, so the FD denominator uses the represented
// step, not the requested one.
struct Coord {
  std::function<double()> get;
  std::function<void(double)> set;
};

// Richardson-extrapolated central difference: D(h) = (L⁺-L⁻)/(θ⁺-θ⁻) at h
// and h/2, combined as (4·D(h/2) - D(h))/3 to cancel the O(h²) term.
double RichardsonFd(const Coord& coord, const std::function<double()>& eval,
                    double step) {
  const double orig = coord.get();
  const double h = step * std::max(1.0, std::fabs(orig));
  auto probe = [&](double hh) {
    coord.set(orig + hh);
    const double tp = coord.get();
    const double lp = eval();
    coord.set(orig - hh);
    const double tm = coord.get();
    const double lm = eval();
    coord.set(orig);
    return (lp - lm) / (tp - tm);
  };
  const double d1 = probe(h);
  const double d2 = probe(h / 2.0);
  return (4.0 * d2 - d1) / 3.0;
}

// Adaptive step for piecewise-linear (ReLU) paths: the large base step can
// cross a kink, making the secant span two linear regions. Shrink the step
// by 4x until two successive Richardson estimates agree; kink-crossing
// coordinates converge once both probes land in θ's own linear region. The
// floor (step/64 ≈ 1e-3) keeps float32 forward noise in the quotient below
// the 1e-4 tolerance. Only used for ReLU networks — on smooth-but-noisier
// objectives (the filter probe loss <W, y>) the agreement test can fail on
// noise alone and the loop would return the noisiest estimate, so smooth
// blocks use RichardsonFd at the base step directly.
double AdaptiveFd(const Coord& coord, const std::function<double()>& eval,
                  double step) {
  double prev = RichardsonFd(coord, eval, step);
  for (double s = step / 4.0; s >= step / 64.0; s /= 4.0) {
    const double cur = RichardsonFd(coord, eval, s);
    if (std::fabs(cur - prev) <=
        2.5e-5 * std::max({1.0, std::fabs(cur), std::fabs(prev)})) {
      return cur;
    }
    prev = cur;
  }
  return prev;
}

double RelErr(double fd, double an) {
  return std::fabs(fd - an) /
         std::max({1.0, std::fabs(fd), std::fabs(an)});
}

// Deterministic subsample of [0, size) with at most max_coords entries.
std::vector<size_t> SampleCoords(size_t size, size_t max_coords,
                                 uint64_t seed) {
  std::vector<size_t> idx;
  if (size <= max_coords) {
    idx.resize(size);
    for (size_t i = 0; i < size; ++i) idx[i] = i;
    return idx;
  }
  // Stride sampling with a seeded offset keeps coverage spread over the
  // block while staying deterministic per (size, seed).
  Rng rng(seed);
  const size_t offset = static_cast<size_t>(rng.UniformInt(size));
  const double stride = static_cast<double>(size) / static_cast<double>(max_coords);
  idx.reserve(max_coords);
  for (size_t i = 0; i < max_coords; ++i) {
    idx.push_back((offset + static_cast<size_t>(stride * static_cast<double>(i))) % size);
  }
  std::sort(idx.begin(), idx.end());
  idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  return idx;
}

GradBlockReport CheckBlock(const std::string& name, size_t size,
                           const std::function<Coord(size_t)>& coord_at,
                           const std::function<double(size_t)>& analytic_at,
                           const std::function<double()>& eval,
                           const GradCheckOptions& opt, bool adaptive = false,
                           std::string detail = "") {
  GradBlockReport report;
  report.block = name;
  report.tolerance = opt.tolerance;
  report.detail = std::move(detail);
  for (size_t i : SampleCoords(size, opt.max_coords, opt.seed)) {
    const double fd = adaptive ? AdaptiveFd(coord_at(i), eval, opt.step)
                               : RichardsonFd(coord_at(i), eval, opt.step);
    const double err = RelErr(fd, analytic_at(i));
    report.max_rel_error = std::max(report.max_rel_error, err);
    ++report.checked;
  }
  report.pass = report.max_rel_error <= report.tolerance;
  if (!report.pass && report.detail.empty()) {
    report.detail = "fd/analytic mismatch";
  }
  return report;
}

Coord MatrixCoord(Matrix* m, size_t flat) {
  const int64_t r = static_cast<int64_t>(flat) / m->cols();
  const int64_t c = static_cast<int64_t>(flat) % m->cols();
  return Coord{
      [m, r, c]() { return static_cast<double>(m->at(r, c)); },
      [m, r, c](double v) { m->at(r, c) = static_cast<float>(v); }};
}

Coord ScalarCoord(std::vector<double>* values, size_t i) {
  return Coord{[values, i]() { return (*values)[i]; },
               [values, i](double v) { (*values)[i] = v; }};
}

}  // namespace

Result<std::vector<GradBlockReport>> CheckFilterGradients(
    const std::string& filter_name, const sparse::CsrMatrix& norm_adj,
    const Matrix& x, const GradCheckOptions& options) {
  if (x.rows() != norm_adj.n()) {
    return Status::InvalidArgument("gradcheck: x rows != graph nodes");
  }
  SGNN_ASSIGN_OR_RETURN(auto filter,
                        filters::CreateFilter(filter_name, options.hops, {},
                                              x.cols()));
  filters::FilterContext ctx;
  ctx.prop = &norm_adj;
  ctx.device = Device::kHost;

  Matrix xs = x;  // perturbable copy for the input-gradient block
  // First forward sizes lazily-allocated parameter groups (adagnn,
  // optbasis) and fixes the output shape for the probe weights W.
  Matrix y0;
  filter->Forward(ctx, xs, &y0, /*cache=*/false);
  Rng wrng(options.seed ^ 0xABCD);
  Matrix w(y0.rows(), y0.cols(), Device::kHost);
  w.FillNormal(&wrng);

  auto eval = [&]() {
    Matrix y;
    filter->Forward(ctx, xs, &y, /*cache=*/false);
    return ops::Dot(w, y);
  };

  // Analytic pass: L = <W, y>, so grad_y = W.
  filter->params().ZeroGrad();
  Matrix yc;
  filter->Forward(ctx, xs, &yc, /*cache=*/true);
  Matrix grad_x;
  filter->Backward(ctx, w, &grad_x);
  filter->ClearCache();

  std::vector<GradBlockReport> reports;
  auto& params = filter->params();
  size_t theta_count = params.size();
  std::string theta_detail;
  if (filter_name == "favard") {
    // The learned basis coefficients a/b are straight-through by design;
    // only the θ block carries analytic gradients.
    theta_count = static_cast<size_t>(options.hops) + 1;
    theta_detail = "theta block only (favard basis params are straight-through)";
  }
  if (theta_count > 0) {
    reports.push_back(CheckBlock(
        filter_name + "/theta", theta_count,
        [&params](size_t i) { return ScalarCoord(&params.values(), i); },
        [&params](size_t i) { return params.grads()[i]; }, eval, options,
        /*adaptive=*/false, theta_detail));
  }
  if (filter_name != "optbasis") {
    reports.push_back(CheckBlock(
        filter_name + "/input", static_cast<size_t>(xs.size()),
        [&xs](size_t i) { return MatrixCoord(&xs, i); },
        [&grad_x](size_t i) {
          return static_cast<double>(
              grad_x.at(static_cast<int64_t>(i) / grad_x.cols(),
                        static_cast<int64_t>(i) % grad_x.cols()));
        },
        eval, options));
  } else {
    GradBlockReport skip;
    skip.block = filter_name + "/input";
    skip.tolerance = options.tolerance;
    skip.pass = true;
    skip.detail = "skipped: optbasis input gradient is straight-through by design";
    reports.push_back(skip);
  }
  return reports;
}

std::vector<GradBlockReport> CheckMlpGradients(const GradCheckOptions& options) {
  const int64_t rows = 12, in_dim = 5, hidden = 8, out_dim = 4;
  nn::Mlp mlp(2, in_dim, hidden, out_dim, /*dropout=*/0.0, Device::kHost);
  Rng init(options.seed + 1);
  mlp.Init(&init);
  Rng data(options.seed + 2);
  Matrix x(rows, in_dim, Device::kHost);
  x.FillNormal(&data);
  std::vector<int32_t> labels(static_cast<size_t>(rows));
  for (auto& l : labels) {
    l = static_cast<int32_t>(data.UniformInt(static_cast<uint64_t>(out_dim)));
  }

  // Dropout is 0, so eval-mode forward equals train-mode forward and the FD
  // probes do not disturb the caches written by the analytic pass.
  auto eval = [&]() {
    Matrix out;
    mlp.Forward(x, &out, /*train=*/false, nullptr);
    Matrix grad(out.rows(), out.cols(), Device::kHost);
    return nn::SoftmaxCrossEntropy(out, labels, {}, &grad);
  };

  mlp.ZeroGrad();
  Matrix out;
  mlp.Forward(x, &out, /*train=*/true, nullptr);
  Matrix grad(out.rows(), out.cols(), Device::kHost);
  nn::SoftmaxCrossEntropy(out, labels, {}, &grad);
  Matrix grad_in;
  mlp.Backward(grad, &grad_in);

  std::vector<GradBlockReport> reports;
  for (size_t l = 0; l < mlp.layers().size(); ++l) {
    auto& layer = mlp.layers()[l];
    Matrix& wv = layer.weight().value();
    Matrix& wg = layer.weight().grad();
    reports.push_back(CheckBlock(
        "mlp/layer" + std::to_string(l) + "/weight",
        static_cast<size_t>(wv.size()),
        [&wv](size_t i) { return MatrixCoord(&wv, i); },
        [&wg](size_t i) {
          return static_cast<double>(wg.at(static_cast<int64_t>(i) / wg.cols(),
                                           static_cast<int64_t>(i) % wg.cols()));
        },
        eval, options, /*adaptive=*/true));
    Matrix& bv = layer.bias().value();
    Matrix& bg = layer.bias().grad();
    reports.push_back(CheckBlock(
        "mlp/layer" + std::to_string(l) + "/bias",
        static_cast<size_t>(bv.size()),
        [&bv](size_t i) { return MatrixCoord(&bv, i); },
        [&bg](size_t i) {
          return static_cast<double>(bg.at(static_cast<int64_t>(i) / bg.cols(),
                                           static_cast<int64_t>(i) % bg.cols()));
        },
        eval, options, /*adaptive=*/true));
  }
  reports.push_back(CheckBlock(
      "mlp/input", static_cast<size_t>(x.size()),
      [&x](size_t i) { return MatrixCoord(&x, i); },
      [&grad_in](size_t i) {
        return static_cast<double>(
            grad_in.at(static_cast<int64_t>(i) / grad_in.cols(),
                       static_cast<int64_t>(i) % grad_in.cols()));
      },
      eval, options, /*adaptive=*/true));
  return reports;
}

std::vector<GradBlockReport> CheckLossGradients(const GradCheckOptions& options) {
  std::vector<GradBlockReport> reports;
  Rng rng(options.seed + 3);

  // Softmax cross-entropy, all rows and a masked subset.
  {
    Matrix logits(6, 3, Device::kHost);
    logits.FillNormal(&rng);
    std::vector<int32_t> labels(6);
    for (auto& l : labels) l = static_cast<int32_t>(rng.UniformInt(3));
    const std::vector<std::vector<int32_t>> row_sets = {{}, {0, 2, 5}};
    const char* names[] = {"loss/softmax_ce/logits",
                           "loss/softmax_ce_masked/logits"};
    for (size_t variant = 0; variant < row_sets.size(); ++variant) {
      const auto& rows = row_sets[variant];
      Matrix grad(logits.rows(), logits.cols(), Device::kHost);
      nn::SoftmaxCrossEntropy(logits, labels, rows, &grad);
      auto eval = [&]() {
        Matrix g(logits.rows(), logits.cols(), Device::kHost);
        return nn::SoftmaxCrossEntropy(logits, labels, rows, &g);
      };
      reports.push_back(CheckBlock(
          names[variant], static_cast<size_t>(logits.size()),
          [&logits](size_t i) { return MatrixCoord(&logits, i); },
          [&grad](size_t i) {
            return static_cast<double>(
                grad.at(static_cast<int64_t>(i) / grad.cols(),
                        static_cast<int64_t>(i) % grad.cols()));
          },
          eval, options));
    }
  }

  // Binary cross-entropy with logits.
  {
    Matrix logits(8, 1, Device::kHost);
    logits.FillNormal(&rng);
    std::vector<float> targets(8);
    for (auto& t : targets) t = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    Matrix grad(8, 1, Device::kHost);
    nn::BceWithLogits(logits, targets, &grad);
    auto eval = [&]() {
      Matrix g(8, 1, Device::kHost);
      return nn::BceWithLogits(logits, targets, &g);
    };
    reports.push_back(CheckBlock(
        "loss/bce/logits", static_cast<size_t>(logits.size()),
        [&logits](size_t i) { return MatrixCoord(&logits, i); },
        [&grad](size_t i) {
          return static_cast<double>(grad.at(static_cast<int64_t>(i), 0));
        },
        eval, options));
  }

  // Mean squared error.
  {
    Matrix pred(5, 3, Device::kHost);
    Matrix target(5, 3, Device::kHost);
    pred.FillNormal(&rng);
    target.FillNormal(&rng);
    Matrix grad(5, 3, Device::kHost);
    nn::MseLoss(pred, target, &grad);
    auto eval = [&]() { return nn::MseLoss(pred, target, nullptr); };
    reports.push_back(CheckBlock(
        "loss/mse/pred", static_cast<size_t>(pred.size()),
        [&pred](size_t i) { return MatrixCoord(&pred, i); },
        [&grad](size_t i) {
          return static_cast<double>(
              grad.at(static_cast<int64_t>(i) / grad.cols(),
                      static_cast<int64_t>(i) % grad.cols()));
        },
        eval, options));
  }
  return reports;
}

Result<std::vector<GradBlockReport>> CheckAllGradients(
    const sparse::CsrMatrix& norm_adj, const Matrix& x,
    const GradCheckOptions& options) {
  std::vector<GradBlockReport> reports;
  for (const auto& name : filters::AllFilterNames()) {
    SGNN_ASSIGN_OR_RETURN(auto filter_reports,
                          CheckFilterGradients(name, norm_adj, x, options));
    for (auto& r : filter_reports) reports.push_back(std::move(r));
  }
  for (auto& r : CheckMlpGradients(options)) reports.push_back(std::move(r));
  for (auto& r : CheckLossGradients(options)) reports.push_back(std::move(r));
  return reports;
}

bool AllPass(const std::vector<GradBlockReport>& reports) {
  for (const auto& r : reports) {
    if (!r.pass) return false;
  }
  return true;
}

std::string FormatReports(const std::vector<GradBlockReport>& reports) {
  std::ostringstream os;
  for (const auto& r : reports) {
    os << (r.pass ? "  ok  " : "FAIL  ") << r.block << "  max_rel="
       << r.max_rel_error << " tol=" << r.tolerance << " coords=" << r.checked;
    if (!r.detail.empty()) os << "  (" << r.detail << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace sgnn::conformance

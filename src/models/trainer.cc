#include "models/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/lazy.h"
#include "shard/plan.h"
#include "shard/spmm.h"
#include "tensor/parallel.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "nn/loss.h"
#include "sparse/adjacency.h"
#include "tensor/ops.h"

namespace sgnn::models {

namespace {

using eval::Stopwatch;

/// Fisher-Yates shuffle of an index vector.
void Shuffle(std::vector<int32_t>* idx, Rng* rng) {
  for (size_t i = idx->size(); i > 1; --i) {
    const auto j = static_cast<size_t>(rng->UniformInt(i));
    std::swap((*idx)[i - 1], (*idx)[j]);
  }
}

/// Shared failure-path supervision for the training loops: the latched-OOM
/// check (one place instead of a copy per loop), NaN/Inf divergence
/// detection on loss and gradient, and the per-run wall-clock deadline.
/// A run that trips a guard stops instead of crashing; the TrainResult
/// carries which guard fired.
class RunGuard {
 public:
  RunGuard(const TrainConfig& config, TrainResult* result)
      : config_(config), result_(result) {}

  /// Epoch-granularity check; returns true when the run must stop. `grad`,
  /// when non-null, is the current loss gradient and is checked for
  /// non-finite entries along with the loss.
  bool ShouldStop(double loss, const Matrix* grad) {
    if (DeviceTracker::Global().accel_oom()) {
      result_->oom = true;
      result_->status =
          Status::OutOfMemory("simulated accelerator over capacity");
      return true;
    }
    if (config_.divergence_check &&
        (!std::isfinite(loss) ||
         (grad != nullptr && !ops::AllFinite(*grad)))) {
      result_->diverged = true;
      result_->status =
          Status::NumericalError("non-finite training loss or gradient");
      return true;
    }
    if (config_.deadline_ms > 0.0 &&
        clock_.ElapsedMs() > config_.deadline_ms) {
      result_->timed_out = true;
      result_->status = Status::DeadlineExceeded(
          "run exceeded deadline of " + std::to_string(config_.deadline_ms) +
          " ms");
      return true;
    }
    return false;
  }

  /// End-of-run check: latches an OOM that fired after the last per-epoch
  /// check (e.g. during the final evaluation pass).
  void Finalize() {
    if (DeviceTracker::Global().accel_oom() && !result_->oom) {
      result_->oom = true;
      result_->status =
          Status::OutOfMemory("simulated accelerator over capacity");
    }
  }

  /// True once any guard fired; aborted runs skip the inference pass.
  bool aborted() const { return !result_->status.ok(); }

 private:
  const TrainConfig& config_;
  TrainResult* result_;
  Stopwatch clock_;
};

}  // namespace

double EvaluateMetric(graph::Metric metric, const Matrix& logits,
                      const std::vector<int32_t>& labels,
                      const std::vector<int32_t>& rows) {
  if (metric == graph::Metric::kRocAuc) {
    return eval::RocAuc(logits, labels, rows);
  }
  return eval::Accuracy(logits, labels, rows);
}

TrainResult TrainFullBatch(const graph::Graph& g, const graph::Splits& splits,
                           graph::Metric metric,
                           filters::SpectralFilter* filter,
                           const TrainConfig& config,
                           bool capture_embeddings) {
  TrainResult result;
  result.stats.threads = parallel::NumThreads();
  auto& tracker = DeviceTracker::Global();
  tracker.ClearOom();
  tracker.ResetPeak();
  RunGuard guard(config, &result);

  Rng rng(config.seed * 0x2545F4914F6CDD1DULL + 7);
  // FB loads graph topology and attributes onto the accelerator. Sharded FB
  // is the spill form of the same scheme (docs/SHARDING.md): the graph no
  // longer fits one device, so topology and representations stay
  // host-resident and only per-shard propagation working sets visit the
  // accelerator, each under its sub-budget. The Device tag never changes
  // kernel arithmetic, so both forms produce identical bits.
  const bool is_sharded = config.num_shards > 1;
  const Device run_device = is_sharded ? Device::kHost : Device::kAccel;
  sparse::CsrMatrix norm = sparse::NormalizeAdjacency(g.adj, config.rho);
  std::unique_ptr<shard::ShardPlan> plan;
  std::unique_ptr<shard::ShardedSpmmOperator> shard_op;
  if (is_sharded) {
    plan = std::make_unique<shard::ShardPlan>(shard::BuildShardPlan(
        norm, shard::PartitionOptions{config.num_shards, config.seed}));
    shard::ShardExecOptions shard_opts;
    shard_opts.compute_device = Device::kAccel;
    shard_opts.shard_budget_bytes = config.shard_budget_bytes;
    shard_op = std::make_unique<shard::ShardedSpmmOperator>(plan.get(),
                                                            shard_opts);
  } else {
    norm.MoveToDevice(Device::kAccel);
  }
  Matrix x = g.features.CloneTo(run_device);

  filter->ResetParameters(&rng);
  const int64_t fi = g.features.cols();
  const int64_t mid = config.phi0_layers > 0 ? config.hidden : fi;
  nn::Mlp phi0(config.phi0_layers, fi, config.hidden, config.hidden,
               config.dropout, run_device);
  nn::Mlp phi1(config.phi1_layers, mid, config.hidden, g.num_classes,
               config.dropout, run_device);
  phi0.Init(&rng);
  phi1.Init(&rng);

  filters::FilterContext ctx{&norm, run_device};
  ctx.op = shard_op.get();

  // No-cache inference forward, optionally through the lazy op-graph. A
  // simulated OOM during lazy execution is latched in the DeviceTracker and
  // surfaced by RunGuard exactly like an eager over-capacity allocation;
  // outputs are fully computed either way (see opgraph/executor.h).
  const auto infer_forward = [&](const Matrix& in, Matrix* out) {
    if (config.lazy && filter->SupportsLazy()) {
      const Status lazy_status = filters::LazyForward(filter, ctx, in, out);
      (void)lazy_status;
    } else {
      filter->Forward(ctx, in, out, /*cache=*/false);
    }
  };

  double best_val = -1.0;
  int64_t step = 0;
  double train_ms_total = 0.0;
  int stale_rounds = 0;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Stopwatch sw;
    // Forward: φ0 -> g(L̃) -> φ1.
    Matrix h0, hf, logits;
    phi0.Forward(x, &h0, /*train=*/true, &rng);
    filter->Forward(ctx, h0, &hf, /*cache=*/true);
    phi1.Forward(hf, &logits, /*train=*/true, &rng);
    Matrix grad(logits.rows(), logits.cols(), run_device);
    result.final_train_loss =
        nn::SoftmaxCrossEntropy(logits, g.labels, splits.train, &grad);
    // Backward + optimizer step.
    phi0.ZeroGrad();
    phi1.ZeroGrad();
    filter->params().ZeroGrad();
    Matrix g_hf(hf.rows(), hf.cols(), run_device);
    phi1.Backward(grad, &g_hf);
    Matrix g_h0;
    filter->Backward(ctx, g_hf, config.phi0_layers > 0 ? &g_h0 : nullptr);
    if (config.phi0_layers > 0) phi0.Backward(g_h0, nullptr);
    ++step;
    phi0.AdamStep(config.weights_opt, step);
    phi1.AdamStep(config.weights_opt, step);
    filter->params().AdamStep(config.filter_opt, step);
    filter->ClearCache();
    train_ms_total += sw.ElapsedMs();

    if (guard.ShouldStop(result.final_train_loss, &grad)) break;

    const bool last = (epoch + 1 == config.epochs);
    if (!config.timing_only &&
        ((epoch + 1) % config.eval_every == 0 || last)) {
      Matrix eh0, ehf, elogits;
      phi0.ForwardInference(x, &eh0);
      infer_forward(eh0, &ehf);
      phi1.ForwardInference(ehf, &elogits);
      const double val = EvaluateMetric(metric, elogits, g.labels, splits.val);
      if (val > best_val) {
        best_val = val;
        result.val_metric = val;
        result.test_metric =
            EvaluateMetric(metric, elogits, g.labels, splits.test);
        result.test_logits = elogits.CloneTo(Device::kHost);
        stale_rounds = 0;
      } else if (++stale_rounds > config.patience) {
        break;
      }
      if (capture_embeddings && last) {
        result.embeddings = ehf.CloneTo(Device::kHost);
      }
    }
  }

  // Inference timing: one full eval-mode pass (skipped when a guard fired:
  // an aborted run must not keep allocating or burn past its deadline).
  if (!guard.aborted()) {
    Stopwatch sw;
    Matrix eh0, ehf, elogits;
    phi0.ForwardInference(x, &eh0);
    infer_forward(eh0, &ehf);
    phi1.ForwardInference(ehf, &elogits);
    result.stats.infer_ms = sw.ElapsedMs();
    if (capture_embeddings && result.embeddings.size() == 0) {
      result.embeddings = ehf.CloneTo(Device::kHost);
    }
  }
  result.stats.train_ms_per_epoch =
      train_ms_total / std::max(1, config.epochs);
  result.stats.peak_ram_bytes = tracker.peak_bytes(Device::kHost);
  result.stats.peak_accel_bytes = tracker.peak_bytes(Device::kAccel);
  if (is_sharded) {
    result.stats.shards = config.num_shards;
    result.stats.shard_spills = shard_op->stats().shard_spills;
  }
  guard.Finalize();
  return result;
}

TrainResult TrainMiniBatch(const graph::Graph& g, const graph::Splits& splits,
                           graph::Metric metric,
                           filters::SpectralFilter* filter,
                           const TrainConfig& config,
                           bool capture_embeddings) {
  TrainResult result;
  if (!filter->SupportsMiniBatch()) {
    result.status = Status::InvalidArgument(
        "TrainMiniBatch: filter " + filter->name() +
        " does not support the MB scheme");
    return result;
  }
  result.stats.threads = parallel::NumThreads();
  auto& tracker = DeviceTracker::Global();
  tracker.ClearOom();
  tracker.ResetPeak();
  RunGuard guard(config, &result);

  Rng rng(config.seed * 0x9E3779B97F4A7C15ULL + 13);
  filter->ResetParameters(&rng);

  // Stage 1: host-side precomputation (CPU in the paper). When sharded,
  // each propagation hop streams per-shard working sets through the
  // accelerator under sub-budgets instead of touching the whole graph at
  // once; terms still land host-resident and bit-identical.
  Stopwatch pre_sw;
  sparse::CsrMatrix norm = sparse::NormalizeAdjacency(g.adj, config.rho);
  filters::FilterContext host_ctx{&norm, Device::kHost};
  std::unique_ptr<shard::ShardPlan> plan;
  std::unique_ptr<shard::ShardedSpmmOperator> shard_op;
  if (config.num_shards > 1) {
    plan = std::make_unique<shard::ShardPlan>(shard::BuildShardPlan(
        norm, shard::PartitionOptions{config.num_shards, config.seed}));
    shard::ShardExecOptions shard_opts;
    shard_opts.compute_device = Device::kAccel;
    shard_opts.shard_budget_bytes = config.shard_budget_bytes;
    shard_op = std::make_unique<shard::ShardedSpmmOperator>(plan.get(),
                                                            shard_opts);
    host_ctx.op = shard_op.get();
  }
  std::vector<Matrix> terms;
  // Lazy path emits the identical term stream (bit-for-bit) with fused
  // propagation and pool-planned buffers; eager remains the oracle.
  const Status pre =
      (config.lazy && filter->SupportsLazy())
          ? filters::LazyPrecompute(filter, host_ctx, g.features, &terms)
          : filter->Precompute(host_ctx, g.features, &terms);
  if (!pre.ok()) {
    result.status = pre;
    return result;
  }
  result.stats.precompute_ms = pre_sw.ElapsedMs();

  // Stage 2: batched training; only batch slices reach the accelerator.
  const int64_t fi = g.features.cols();
  nn::Mlp phi1(config.phi1_layers > 0 ? config.phi1_layers : 2, fi,
               config.hidden, g.num_classes, config.dropout, Device::kAccel);
  phi1.Init(&rng);

  auto gather_batch = [&](const std::vector<int32_t>& batch_rows,
                          std::vector<Matrix>* hold,
                          std::vector<const Matrix*>* ptrs) {
    hold->clear();
    ptrs->clear();
    hold->resize(terms.size());
    // Host-side row gathers are independent per term and may run
    // concurrently (DeviceTracker host accounting is mutex-protected and
    // the fault hook only counts accelerator allocations). The accelerator
    // transfers stay serial in term order so fault-injection replay sees
    // the same allocation sequence at any thread count.
    parallel::ParallelFor(
        0, static_cast<int64_t>(terms.size()), 1,
        [&](int64_t lo, int64_t hi) {
          for (int64_t t = lo; t < hi; ++t) {
            (*hold)[static_cast<size_t>(t)] =
                terms[static_cast<size_t>(t)].GatherRows(batch_rows);
          }
        });
    for (auto& m : *hold) m.MoveToDevice(Device::kAccel);
    for (const auto& m : *hold) ptrs->push_back(&m);
  };

  auto batch_logits = [&](const std::vector<int32_t>& rows, bool train,
                          Matrix* out) {
    std::vector<Matrix> hold;
    std::vector<const Matrix*> ptrs;
    gather_batch(rows, &hold, &ptrs);
    Matrix h;
    filter->CombineTerms(ptrs, &h, /*cache=*/train);
    if (train) {
      phi1.Forward(h, out, /*train=*/true, &rng);
    } else {
      phi1.ForwardInference(h, out);
    }
  };

  // Full-graph eval helper: fills logits rows for the listed nodes.
  Matrix all_logits(g.n, g.num_classes, Device::kHost);
  auto eval_rows = [&](const std::vector<int32_t>& rows) {
    for (size_t start = 0; start < rows.size();
         start += static_cast<size_t>(config.batch_size)) {
      const size_t end = std::min(
          rows.size(), start + static_cast<size_t>(config.batch_size));
      std::vector<int32_t> batch(rows.begin() + static_cast<int64_t>(start),
                                 rows.begin() + static_cast<int64_t>(end));
      Matrix logits;
      batch_logits(batch, /*train=*/false, &logits);
      for (size_t i = 0; i < batch.size(); ++i) {
        for (int64_t c = 0; c < g.num_classes; ++c) {
          all_logits.at(batch[i], c) = logits.at(static_cast<int64_t>(i), c);
        }
      }
    }
  };

  std::vector<int32_t> train_idx = splits.train;
  double train_ms_total = 0.0;
  double best_val = -1.0;
  int64_t step = 0;
  int stale_rounds = 0;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Stopwatch sw;
    Shuffle(&train_idx, &rng);
    for (size_t start = 0; start < train_idx.size();
         start += static_cast<size_t>(config.batch_size)) {
      const size_t end = std::min(
          train_idx.size(), start + static_cast<size_t>(config.batch_size));
      std::vector<int32_t> batch(
          train_idx.begin() + static_cast<int64_t>(start),
          train_idx.begin() + static_cast<int64_t>(end));
      std::vector<Matrix> hold;
      std::vector<const Matrix*> ptrs;
      gather_batch(batch, &hold, &ptrs);
      Matrix h;
      filter->CombineTerms(ptrs, &h, /*cache=*/true);
      Matrix logits;
      phi1.Forward(h, &logits, /*train=*/true, &rng);
      std::vector<int32_t> batch_labels(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        batch_labels[i] = g.labels[static_cast<size_t>(batch[i])];
      }
      Matrix grad(logits.rows(), logits.cols(), Device::kAccel);
      result.final_train_loss =
          nn::SoftmaxCrossEntropy(logits, batch_labels, {}, &grad);
      phi1.ZeroGrad();
      filter->params().ZeroGrad();
      Matrix g_h(h.rows(), h.cols(), Device::kAccel);
      phi1.Backward(grad, &g_h);
      filter->BackwardCombine(ptrs, g_h);
      ++step;
      phi1.AdamStep(config.weights_opt, step);
      filter->params().AdamStep(config.filter_opt, step);
    }
    train_ms_total += sw.ElapsedMs();
    if (guard.ShouldStop(result.final_train_loss, nullptr)) break;
    const bool last = (epoch + 1 == config.epochs);
    if (!config.timing_only &&
        ((epoch + 1) % config.eval_every == 0 || last)) {
      eval_rows(splits.val);
      const double val =
          EvaluateMetric(metric, all_logits, g.labels, splits.val);
      if (val > best_val) {
        best_val = val;
        result.val_metric = val;
        eval_rows(splits.test);
        result.test_metric =
            EvaluateMetric(metric, all_logits, g.labels, splits.test);
        result.test_logits = all_logits;
        stale_rounds = 0;
      } else if (++stale_rounds > config.patience) {
        break;
      }
    }
  }

  // Inference timing over the test set (skipped when a guard fired).
  if (!guard.aborted()) {
    Stopwatch sw;
    eval_rows(splits.test);
    result.stats.infer_ms = sw.ElapsedMs();
  }
  if (capture_embeddings && !guard.aborted()) {
    std::vector<int32_t> all(static_cast<size_t>(g.n));
    std::iota(all.begin(), all.end(), 0);
    Matrix emb(g.n, fi, Device::kHost);
    for (size_t start = 0; start < all.size();
         start += static_cast<size_t>(config.batch_size)) {
      const size_t end =
          std::min(all.size(), start + static_cast<size_t>(config.batch_size));
      std::vector<int32_t> batch(all.begin() + static_cast<int64_t>(start),
                                 all.begin() + static_cast<int64_t>(end));
      std::vector<Matrix> hold;
      std::vector<const Matrix*> ptrs;
      gather_batch(batch, &hold, &ptrs);
      Matrix h;
      filter->CombineTerms(ptrs, &h, /*cache=*/false);
      for (size_t i = 0; i < batch.size(); ++i) {
        for (int64_t c = 0; c < fi; ++c) {
          emb.at(batch[i], c) = h.at(static_cast<int64_t>(i), c);
        }
      }
    }
    result.embeddings = std::move(emb);
  }
  if (config.export_model && !guard.aborted()) {
    // Serving artifact: the terms are moved out (training is over), φ1 and
    // θ are copied at their final values. A guard-tripped run exports
    // nothing — a checkpoint must never capture a diverged model.
    auto exported = std::make_shared<ExportedModel>();
    exported->phi1 = phi1;
    exported->terms = std::move(terms);
    exported->theta = filter->params().values();
    result.exported = std::move(exported);
  }
  result.stats.train_ms_per_epoch =
      train_ms_total / std::max(1, config.epochs);
  result.stats.peak_ram_bytes = tracker.peak_bytes(Device::kHost);
  result.stats.peak_accel_bytes = tracker.peak_bytes(Device::kAccel);
  if (config.num_shards > 1) {
    result.stats.shards = config.num_shards;
    result.stats.shard_spills = shard_op->stats().shard_spills;
  }
  guard.Finalize();
  return result;
}

}  // namespace sgnn::models

// Graph signal regression (paper Section 6.1.3, Table 7).
//
// Fully supervised: given input signal x and target z = U ĝ*(Λ) Uᵀ x built
// from the exact eigendecomposition of L̃ on a small graph, the filter's
// coefficients are trained to minimize MSE; R² measures how well the filter
// family can realize the target frequency response.

#ifndef SGNN_MODELS_REGRESSION_H_
#define SGNN_MODELS_REGRESSION_H_

#include <functional>
#include <string>

#include "core/filter.h"
#include "eval/eigen.h"
#include "graph/graph.h"
#include "models/trainer.h"

namespace sgnn::models {

/// Signal-regression configuration.
struct RegressionConfig {
  /// Deliberately tight optimization budget: the paper's Table 7 separates
  /// filters by how *trainable* their bases are (conditioning and init),
  /// not by the best polynomial of degree K — a generous budget would let
  /// every variable basis reach the same optimum.
  int epochs = 60;
  nn::AdamConfig filter_opt{1e-2, 0.9, 0.999, 1e-8, 0.0};
  double rho = 0.5;
  uint64_t seed = 1;
  int signal_dim = 4;  ///< number of random input signal channels
};

/// Outcome of one regression run.
struct RegressionResult {
  double r2 = 0.0;
  double final_mse = 0.0;
};

/// Precomputed regression problem shared across filters: graph spectrum and
/// input signals.
struct RegressionProblem {
  sparse::CsrMatrix norm;        ///< normalized adjacency Ã
  eval::EigenDecomposition eig;  ///< spectrum of L̃ = I - Ã
  Matrix x;                      ///< input signals (n x signal_dim)
};

/// Builds the shared problem for a graph (eigendecomposes L̃; n <= ~1500).
RegressionProblem BuildRegressionProblem(const graph::Graph& g,
                                         const RegressionConfig& config);

/// Trains `filter`'s coefficients to regress the target response g*.
/// Fixed filters are evaluated without training (their response is frozen);
/// a single global scale is fitted analytically for fairness.
RegressionResult RunSignalRegression(const RegressionProblem& problem,
                                     const std::function<double(double)>& g_star,
                                     filters::SpectralFilter* filter,
                                     const RegressionConfig& config);

}  // namespace sgnn::models

#endif  // SGNN_MODELS_REGRESSION_H_

#include "models/linkpred.h"

#include <algorithm>

#include "eval/metrics.h"
#include "eval/table.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "sparse/adjacency.h"
#include "tensor/ops.h"

namespace sgnn::models {

namespace {

using eval::Stopwatch;

/// One scored node pair.
struct EdgeSample {
  int32_t u;
  int32_t v;
  float label;  // 1 positive, 0 negative
};

/// Collects undirected edges (u < v, no self loops) from the adjacency.
std::vector<std::pair<int32_t, int32_t>> CollectEdges(const graph::Graph& g) {
  std::vector<std::pair<int32_t, int32_t>> edges;
  const auto& indptr = g.adj.indptr();
  const auto& indices = g.adj.indices();
  for (int64_t u = 0; u < g.n; ++u) {
    for (int64_t p = indptr[static_cast<size_t>(u)];
         p < indptr[static_cast<size_t>(u) + 1]; ++p) {
      const int32_t v = indices[static_cast<size_t>(p)];
      if (v > u) edges.emplace_back(static_cast<int32_t>(u), v);
    }
  }
  return edges;
}

}  // namespace

LinkPredResult TrainLinkPrediction(const graph::Graph& g,
                                   filters::SpectralFilter* filter,
                                   const LinkPredConfig& config) {
  LinkPredResult result;
  auto& tracker = DeviceTracker::Global();
  tracker.ClearOom();
  tracker.ResetPeak();
  Rng rng(config.base.seed * 0x8B72E1F371C69AEDULL + 17);
  filter->ResetParameters(&rng);

  // Precompute filtered embeddings on the host (fixed-filter path folds θ;
  // variable filters keep per-hop terms and combine per batch).
  Stopwatch pre_sw;
  sparse::CsrMatrix norm = sparse::NormalizeAdjacency(g.adj, config.base.rho);
  filters::FilterContext ctx{&norm, Device::kHost};
  std::vector<Matrix> terms;
  const Status pre = filter->Precompute(ctx, g.features, &terms);
  SGNN_CHECK(pre.ok(), "link prediction requires an MB-capable filter");
  result.stats.precompute_ms = pre_sw.ElapsedMs();

  // Edge samples: held-out positives + uniform negatives (κ per positive).
  std::vector<std::pair<int32_t, int32_t>> edges = CollectEdges(g);
  for (size_t i = edges.size(); i > 1; --i) {
    const auto j = static_cast<size_t>(rng.UniformInt(i));
    std::swap(edges[i - 1], edges[j]);
  }
  const auto n_test =
      static_cast<size_t>(config.test_frac * static_cast<double>(edges.size()));
  auto make_samples = [&](size_t begin, size_t end) {
    std::vector<EdgeSample> samples;
    samples.reserve((end - begin) * (1 + static_cast<size_t>(config.neg_ratio)));
    for (size_t i = begin; i < end; ++i) {
      samples.push_back({edges[i].first, edges[i].second, 1.0f});
      for (int k = 0; k < config.neg_ratio; ++k) {
        samples.push_back(
            {static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(g.n))),
             static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(g.n))),
             0.0f});
      }
    }
    return samples;
  };
  std::vector<EdgeSample> test_samples = make_samples(0, n_test);
  std::vector<EdgeSample> train_samples = make_samples(n_test, edges.size());

  const int64_t fi = g.features.cols();
  nn::Mlp scorer(2, fi, config.base.hidden, 1, config.base.dropout,
                 Device::kAccel);
  scorer.Init(&rng);

  // Builds the Hadamard-product features h_u ⊙ h_v for a sample batch.
  auto batch_features = [&](const std::vector<EdgeSample>& samples,
                            size_t begin, size_t end, bool train, Matrix* feat,
                            std::vector<const Matrix*>* ptrs_u,
                            std::vector<Matrix>* hold) {
    std::vector<int32_t> us, vs;
    for (size_t i = begin; i < end; ++i) {
      us.push_back(samples[i].u);
      vs.push_back(samples[i].v);
    }
    hold->clear();
    ptrs_u->clear();
    std::vector<Matrix> hold_v;
    std::vector<const Matrix*> ptrs_v;
    for (const auto& term : terms) {
      Matrix su = term.GatherRows(us);
      su.MoveToDevice(Device::kAccel);
      hold->push_back(std::move(su));
      Matrix sv = term.GatherRows(vs);
      sv.MoveToDevice(Device::kAccel);
      hold_v.push_back(std::move(sv));
    }
    for (const auto& m : *hold) ptrs_u->push_back(&m);
    for (const auto& m : hold_v) ptrs_v.push_back(&m);
    Matrix hu, hv;
    filter->CombineTerms(*ptrs_u, &hu, /*cache=*/false);
    filter->CombineTerms(ptrs_v, &hv, /*cache=*/false);
    (void)train;
    ops::MulInPlace(hv, &hu);
    *feat = std::move(hu);
  };

  double train_ms_total = 0.0;
  int64_t step = 0;
  for (int epoch = 0; epoch < config.base.epochs; ++epoch) {
    Stopwatch sw;
    for (size_t i = train_samples.size(); i > 1; --i) {
      const auto j = static_cast<size_t>(rng.UniformInt(i));
      std::swap(train_samples[i - 1], train_samples[j]);
    }
    const auto bs = static_cast<size_t>(config.base.batch_size);
    for (size_t start = 0; start < train_samples.size(); start += bs) {
      const size_t end = std::min(train_samples.size(), start + bs);
      Matrix feat;
      std::vector<const Matrix*> ptrs;
      std::vector<Matrix> hold;
      batch_features(train_samples, start, end, true, &feat, &ptrs, &hold);
      Matrix logits;
      scorer.Forward(feat, &logits, /*train=*/true, &rng);
      std::vector<float> targets;
      targets.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        targets.push_back(train_samples[i].label);
      }
      Matrix grad(logits.rows(), 1, Device::kAccel);
      nn::BceWithLogits(logits, targets, &grad);
      scorer.ZeroGrad();
      scorer.Backward(grad, nullptr);
      ++step;
      scorer.AdamStep(config.base.weights_opt, step);
    }
    train_ms_total += sw.ElapsedMs();
    if (tracker.accel_oom()) {
      result.oom = true;
      break;
    }
  }

  // Test AUC + inference timing.
  {
    Stopwatch sw;
    std::vector<double> scores;
    std::vector<int32_t> truth;
    const auto bs = static_cast<size_t>(config.base.batch_size);
    for (size_t start = 0; start < test_samples.size(); start += bs) {
      const size_t end = std::min(test_samples.size(), start + bs);
      Matrix feat;
      std::vector<const Matrix*> ptrs;
      std::vector<Matrix> hold;
      batch_features(test_samples, start, end, false, &feat, &ptrs, &hold);
      Matrix logits;
      scorer.Forward(feat, &logits, /*train=*/false, nullptr);
      for (int64_t i = 0; i < logits.rows(); ++i) {
        scores.push_back(logits.at(i, 0));
        truth.push_back(test_samples[start + static_cast<size_t>(i)].label >
                                0.5f
                            ? 1
                            : 0);
      }
    }
    result.test_auc = eval::RocAucFromScores(scores, truth);
    result.stats.infer_ms = sw.ElapsedMs();
  }
  result.stats.train_ms_per_epoch =
      train_ms_total / std::max(1, config.base.epochs);
  result.stats.peak_ram_bytes = tracker.peak_bytes(Device::kHost);
  result.stats.peak_accel_bytes = tracker.peak_bytes(Device::kAccel);
  if (tracker.accel_oom()) result.oom = true;
  return result;
}

}  // namespace sgnn::models

#include "models/partition.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "eval/table.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "sparse/adjacency.h"
#include "tensor/ops.h"

namespace sgnn::models {

namespace {

using eval::Stopwatch;

/// One partition's materialized state.
struct Part {
  std::vector<int32_t> nodes;          ///< global ids, order = local ids
  sparse::CsrMatrix norm;              ///< induced normalized adjacency
  Matrix features;                     ///< gathered rows of X
  std::vector<int32_t> labels;         ///< per local node
  std::vector<int32_t> local_train;    ///< local ids in the train split
};

}  // namespace

std::vector<int32_t> BfsPartition(const graph::Graph& g, int num_parts,
                                  uint64_t seed) {
  SGNN_CHECK(num_parts >= 1, "BfsPartition: need at least one part");
  const int64_t target =
      (g.n + num_parts - 1) / std::max(1, num_parts);
  std::vector<int32_t> part(static_cast<size_t>(g.n), -1);
  Rng rng(seed ^ 0x51ED2700AA11ULL);
  const auto& indptr = g.adj.indptr();
  const auto& indices = g.adj.indices();
  int32_t current = 0;
  int64_t in_current = 0;
  std::deque<int32_t> frontier;
  int64_t assigned = 0;
  while (assigned < g.n) {
    if (frontier.empty()) {
      // Seed a new BFS at a random unassigned node.
      int32_t v;
      do {
        v = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(g.n)));
      } while (part[static_cast<size_t>(v)] >= 0);
      frontier.push_back(v);
      part[static_cast<size_t>(v)] = current;
      ++in_current;
      ++assigned;
    }
    const int32_t v = frontier.front();
    frontier.pop_front();
    for (int64_t p = indptr[static_cast<size_t>(v)];
         p < indptr[static_cast<size_t>(v) + 1]; ++p) {
      const int32_t u = indices[static_cast<size_t>(p)];
      if (part[static_cast<size_t>(u)] >= 0) continue;
      part[static_cast<size_t>(u)] = current;
      frontier.push_back(u);
      ++in_current;
      ++assigned;
      if (in_current >= target && current + 1 < num_parts) {
        frontier.clear();
        ++current;
        in_current = 0;
        break;
      }
    }
    if (in_current >= target && current + 1 < num_parts) {
      frontier.clear();
      ++current;
      in_current = 0;
    }
  }
  return part;
}

double CutFraction(const graph::Graph& g, const std::vector<int32_t>& parts) {
  const auto& indptr = g.adj.indptr();
  const auto& indices = g.adj.indices();
  int64_t cut = 0, total = 0;
  for (int64_t v = 0; v < g.n; ++v) {
    for (int64_t p = indptr[static_cast<size_t>(v)];
         p < indptr[static_cast<size_t>(v) + 1]; ++p) {
      const int32_t u = indices[static_cast<size_t>(p)];
      if (u == v) continue;
      ++total;
      if (parts[static_cast<size_t>(u)] != parts[static_cast<size_t>(v)]) {
        ++cut;
      }
    }
  }
  return total > 0 ? static_cast<double>(cut) / static_cast<double>(total)
                   : 0.0;
}

TrainResult TrainGraphPartition(const graph::Graph& g,
                                const graph::Splits& splits,
                                graph::Metric metric,
                                filters::SpectralFilter* filter,
                                const PartitionConfig& config) {
  TrainResult result;
  auto& tracker = DeviceTracker::Global();
  tracker.ClearOom();
  tracker.ResetPeak();
  const TrainConfig& base = config.base;
  Rng rng(base.seed * 0x6C62272E07BB0142ULL + 29);
  filter->ResetParameters(&rng);

  // Build parts: induced subgraphs, gathered features, relabeled splits.
  Stopwatch pre_sw;
  const std::vector<int32_t> part_of =
      BfsPartition(g, config.num_parts, base.seed);
  std::vector<Part> parts(static_cast<size_t>(config.num_parts));
  std::vector<int32_t> local_id(static_cast<size_t>(g.n));
  for (int64_t v = 0; v < g.n; ++v) {
    auto& part = parts[static_cast<size_t>(part_of[static_cast<size_t>(v)])];
    local_id[static_cast<size_t>(v)] =
        static_cast<int32_t>(part.nodes.size());
    part.nodes.push_back(static_cast<int32_t>(v));
  }
  std::vector<bool> in_train(static_cast<size_t>(g.n), false);
  for (const int32_t v : splits.train) in_train[static_cast<size_t>(v)] = true;
  const auto& indptr = g.adj.indptr();
  const auto& indices = g.adj.indices();
  for (auto& part : parts) {
    const auto pn = static_cast<int64_t>(part.nodes.size());
    sparse::EdgeList edges;
    for (int64_t i = 0; i < pn; ++i) {
      const int32_t v = part.nodes[static_cast<size_t>(i)];
      for (int64_t p = indptr[static_cast<size_t>(v)];
           p < indptr[static_cast<size_t>(v) + 1]; ++p) {
        const int32_t u = indices[static_cast<size_t>(p)];
        if (u == v || part_of[static_cast<size_t>(u)] !=
                          part_of[static_cast<size_t>(v)]) {
          continue;  // severed cross-partition edge
        }
        if (local_id[static_cast<size_t>(u)] > i) {
          edges.emplace_back(static_cast<int32_t>(i),
                             local_id[static_cast<size_t>(u)]);
        }
      }
    }
    auto adj = sparse::BuildAdjacency(std::max<int64_t>(pn, 1), edges,
                                      /*add_self_loops=*/true);
    SGNN_CHECK(adj.ok(), "partition adjacency failed");
    part.norm = sparse::NormalizeAdjacency(adj.value(), base.rho);
    part.norm.MoveToDevice(Device::kAccel);
    part.features = g.features.GatherRows(part.nodes);
    part.features.MoveToDevice(Device::kAccel);
    part.labels.resize(part.nodes.size());
    for (size_t i = 0; i < part.nodes.size(); ++i) {
      part.labels[i] = g.labels[static_cast<size_t>(part.nodes[i])];
      if (in_train[static_cast<size_t>(part.nodes[i])]) {
        part.local_train.push_back(static_cast<int32_t>(i));
      }
    }
  }
  result.stats.precompute_ms = pre_sw.ElapsedMs();

  const int64_t fi = g.features.cols();
  const int64_t mid = base.phi0_layers > 0 ? base.hidden : fi;
  nn::Mlp phi0(base.phi0_layers, fi, base.hidden, base.hidden, base.dropout,
               Device::kAccel);
  nn::Mlp phi1(base.phi1_layers, mid, base.hidden, g.num_classes,
               base.dropout, Device::kAccel);
  phi0.Init(&rng);
  phi1.Init(&rng);

  auto forward_part = [&](Part& part, bool train, Matrix* logits) {
    filters::FilterContext ctx{&part.norm, Device::kAccel};
    Matrix h0, hf;
    phi0.Forward(part.features, &h0, train, train ? &rng : nullptr);
    filter->Forward(ctx, h0, &hf, train);
    phi1.Forward(hf, logits, train, train ? &rng : nullptr);
  };

  // Full-graph eval by sweeping parts.
  Matrix all_logits(g.n, g.num_classes, Device::kHost);
  auto eval_all = [&]() {
    for (auto& part : parts) {
      if (part.nodes.empty()) continue;
      Matrix logits;
      forward_part(part, /*train=*/false, &logits);
      for (size_t i = 0; i < part.nodes.size(); ++i) {
        for (int64_t c = 0; c < g.num_classes; ++c) {
          all_logits.at(part.nodes[i], c) =
              logits.at(static_cast<int64_t>(i), c);
        }
      }
    }
  };

  double best_val = -1.0;
  double train_ms_total = 0.0;
  int64_t step = 0;
  for (int epoch = 0; epoch < base.epochs; ++epoch) {
    Stopwatch sw;
    for (auto& part : parts) {
      if (part.local_train.empty()) continue;
      Matrix logits;
      forward_part(part, /*train=*/true, &logits);
      Matrix grad(logits.rows(), logits.cols(), Device::kAccel);
      result.final_train_loss = nn::SoftmaxCrossEntropy(
          logits, part.labels, part.local_train, &grad);
      phi0.ZeroGrad();
      phi1.ZeroGrad();
      filter->params().ZeroGrad();
      filters::FilterContext ctx{&part.norm, Device::kAccel};
      Matrix g_hf(logits.rows(), mid, Device::kAccel);
      phi1.Backward(grad, &g_hf);
      Matrix g_h0;
      filter->Backward(ctx, g_hf, base.phi0_layers > 0 ? &g_h0 : nullptr);
      if (base.phi0_layers > 0) phi0.Backward(g_h0, nullptr);
      ++step;
      phi0.AdamStep(base.weights_opt, step);
      phi1.AdamStep(base.weights_opt, step);
      filter->params().AdamStep(base.filter_opt, step);
      filter->ClearCache();
    }
    train_ms_total += sw.ElapsedMs();
    if (tracker.accel_oom()) {
      result.oom = true;
      break;
    }
    if (!base.timing_only &&
        ((epoch + 1) % base.eval_every == 0 || epoch + 1 == base.epochs)) {
      eval_all();
      const double val =
          EvaluateMetric(metric, all_logits, g.labels, splits.val);
      if (val > best_val) {
        best_val = val;
        result.val_metric = val;
        result.test_metric =
            EvaluateMetric(metric, all_logits, g.labels, splits.test);
        result.test_logits = all_logits;
      }
    }
  }
  {
    Stopwatch sw;
    eval_all();
    result.stats.infer_ms = sw.ElapsedMs();
  }
  result.stats.train_ms_per_epoch =
      train_ms_total / std::max(1, base.epochs);
  result.stats.peak_ram_bytes = tracker.peak_bytes(Device::kHost);
  result.stats.peak_accel_bytes = tracker.peak_bytes(Device::kAccel);
  if (tracker.accel_oom()) result.oom = true;
  return result;
}

}  // namespace sgnn::models

#include "models/baselines.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "eval/table.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "sparse/adjacency.h"
#include "tensor/ops.h"

namespace sgnn::models {

namespace {

using eval::Stopwatch;

/// Propagation dispatcher over the two backends.
class Propagator {
 public:
  Propagator(const sparse::CsrMatrix* csr, Backend backend, Device device)
      : csr_(csr), backend_(backend) {
    if (backend == Backend::kEi) {
      ei_ = std::make_unique<sparse::EdgeIndex>(*csr, device);
    }
  }

  void Apply(const Matrix& x, Matrix* out) const {
    if (backend_ == Backend::kSp) {
      csr_->SpMM(x, out);
    } else {
      ei_->PropagateGatherScatter(x, out);
    }
  }

 private:
  const sparse::CsrMatrix* csr_;
  Backend backend_;
  std::unique_ptr<sparse::EdgeIndex> ei_;
};

void ReluBackward(const Matrix& pre, Matrix* grad) {
  const float* pd = pre.data();
  float* gd = grad->data();
  for (int64_t i = 0; i < grad->size(); ++i) {
    if (pd[i] <= 0.0f) gd[i] = 0.0f;
  }
}

/// Two-layer message-passing trainer shared by GCN / SAGE / ChebNet.
TrainResult TrainMessagePassing(const graph::Graph& g,
                                const graph::Splits& splits,
                                graph::Metric metric, BaselineKind kind,
                                Backend backend, const TrainConfig& config) {
  TrainResult result;
  auto& tracker = DeviceTracker::Global();
  tracker.ClearOom();
  tracker.ResetPeak();
  Rng rng(config.seed * 0x5851F42D4C957F2DULL + 11);

  sparse::CsrMatrix norm = sparse::NormalizeAdjacency(g.adj, config.rho);
  norm.MoveToDevice(Device::kAccel);
  Matrix x = g.features.CloneTo(Device::kAccel);
  Propagator prop(&norm, backend, Device::kAccel);

  const int64_t fi = g.features.cols();
  const int64_t hid = config.hidden;
  const int64_t c = g.num_classes;
  // Per-layer weight sets: GCN 1, SAGE 2 (self+neighbor), Cheb 3 (orders).
  const int w_per_layer =
      kind == BaselineKind::kGcn ? 1 : (kind == BaselineKind::kSage ? 2 : 3);
  std::vector<nn::Linear> l1, l2;
  for (int w = 0; w < w_per_layer; ++w) {
    l1.emplace_back(fi, hid, Device::kAccel);
    l2.emplace_back(hid, c, Device::kAccel);
    l1.back().Init(&rng);
    l2.back().Init(&rng);
  }

  // Produces the per-weight input matrices of one layer.
  auto layer_inputs = [&](const Matrix& h, std::vector<Matrix>* inputs) {
    inputs->clear();
    if (kind == BaselineKind::kGcn) {
      Matrix p(h.rows(), h.cols(), Device::kAccel);
      prop.Apply(h, &p);
      inputs->push_back(std::move(p));
    } else if (kind == BaselineKind::kSage) {
      inputs->push_back(h);
      Matrix p(h.rows(), h.cols(), Device::kAccel);
      prop.Apply(h, &p);
      inputs->push_back(std::move(p));
    } else {
      // Chebyshev order-2: T0 = h, T1 = Ã h, T2 = 2Ã T1 - T0.
      inputs->push_back(h);
      Matrix t1(h.rows(), h.cols(), Device::kAccel);
      prop.Apply(h, &t1);
      Matrix t2(h.rows(), h.cols(), Device::kAccel);
      prop.Apply(t1, &t2);
      ops::Scale(2.0f, &t2);
      ops::Axpy(-1.0f, h, &t2);
      inputs->push_back(std::move(t1));
      inputs->push_back(std::move(t2));
    }
  };

  auto forward = [&](bool train, std::vector<Matrix>* in1,
                     std::vector<Matrix>* in2, Matrix* pre1, Matrix* logits) {
    (void)train;
    layer_inputs(x, in1);
    Matrix z1(g.n, hid, Device::kAccel);
    Matrix tmp(g.n, hid, Device::kAccel);
    z1.Fill(0.0f);
    for (int w = 0; w < w_per_layer; ++w) {
      l1[static_cast<size_t>(w)].Forward((*in1)[static_cast<size_t>(w)], &tmp);
      ops::Axpy(1.0f, tmp, &z1);
    }
    *pre1 = z1;
    float* zd = z1.data();
    for (int64_t i = 0; i < z1.size(); ++i) zd[i] = zd[i] > 0 ? zd[i] : 0.0f;
    layer_inputs(z1, in2);
    Matrix z2(g.n, c, Device::kAccel);
    Matrix tmp2(g.n, c, Device::kAccel);
    z2.Fill(0.0f);
    for (int w = 0; w < w_per_layer; ++w) {
      l2[static_cast<size_t>(w)].Forward((*in2)[static_cast<size_t>(w)],
                                         &tmp2);
      ops::Axpy(1.0f, tmp2, &z2);
    }
    *logits = std::move(z2);
  };

  // Gradient of one layer's inputs back to its pre-propagation activation:
  // propagation matrices are symmetric, so replay Apply on the gradient.
  auto backward_inputs = [&](const std::vector<Matrix>& grads_in,
                             Matrix* grad_h) {
    if (kind == BaselineKind::kGcn) {
      prop.Apply(grads_in[0], grad_h);
    } else if (kind == BaselineKind::kSage) {
      ops::Copy(grads_in[0], grad_h);
      Matrix p(grad_h->rows(), grad_h->cols(), Device::kAccel);
      prop.Apply(grads_in[1], &p);
      ops::Axpy(1.0f, p, grad_h);
    } else {
      // d/dh of [h, Ãh, 2Ã²h - h]: g0 + Ã g1 + 2Ã² g2 - g2.
      ops::Copy(grads_in[0], grad_h);
      Matrix p(grad_h->rows(), grad_h->cols(), Device::kAccel);
      prop.Apply(grads_in[1], &p);
      ops::Axpy(1.0f, p, grad_h);
      Matrix p2(grad_h->rows(), grad_h->cols(), Device::kAccel);
      prop.Apply(grads_in[2], &p2);
      prop.Apply(p2, &p);
      ops::Axpy(2.0f, p, grad_h);
      ops::Axpy(-1.0f, grads_in[2], grad_h);
    }
  };

  double best_val = -1.0;
  double train_ms_total = 0.0;
  int64_t step = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Stopwatch sw;
    std::vector<Matrix> in1, in2;
    Matrix pre1, logits;
    forward(/*train=*/true, &in1, &in2, &pre1, &logits);
    Matrix grad(logits.rows(), logits.cols(), Device::kAccel);
    result.final_train_loss =
        nn::SoftmaxCrossEntropy(logits, g.labels, splits.train, &grad);
    for (auto& l : l1) l.ZeroGrad();
    for (auto& l : l2) l.ZeroGrad();
    // Layer 2 backward.
    std::vector<Matrix> gin2;
    for (int w = 0; w < w_per_layer; ++w) {
      Matrix gi(g.n, hid, Device::kAccel);
      l2[static_cast<size_t>(w)].Backward(in2[static_cast<size_t>(w)], grad,
                                          &gi);
      gin2.push_back(std::move(gi));
    }
    Matrix grad_h1(g.n, hid, Device::kAccel);
    backward_inputs(gin2, &grad_h1);
    ReluBackward(pre1, &grad_h1);
    for (int w = 0; w < w_per_layer; ++w) {
      l1[static_cast<size_t>(w)].Backward(in1[static_cast<size_t>(w)],
                                          grad_h1, nullptr);
    }
    ++step;
    for (auto& l : l1) l.AdamStep(config.weights_opt, step);
    for (auto& l : l2) l.AdamStep(config.weights_opt, step);
    train_ms_total += sw.ElapsedMs();
    if (tracker.accel_oom()) {
      result.oom = true;
      break;
    }
    if (!config.timing_only && ((epoch + 1) % config.eval_every == 0 ||
                                epoch + 1 == config.epochs)) {
      std::vector<Matrix> e1, e2;
      Matrix ep, elogits;
      forward(/*train=*/false, &e1, &e2, &ep, &elogits);
      const double val = EvaluateMetric(metric, elogits, g.labels, splits.val);
      if (val > best_val) {
        best_val = val;
        result.val_metric = val;
        result.test_metric =
            EvaluateMetric(metric, elogits, g.labels, splits.test);
      }
    }
  }
  {
    Stopwatch sw;
    std::vector<Matrix> e1, e2;
    Matrix ep, elogits;
    forward(/*train=*/false, &e1, &e2, &ep, &elogits);
    result.stats.infer_ms = sw.ElapsedMs();
  }
  result.stats.train_ms_per_epoch =
      train_ms_total / std::max(1, config.epochs);
  result.stats.peak_ram_bytes = tracker.peak_bytes(Device::kHost);
  result.stats.peak_accel_bytes = tracker.peak_bytes(Device::kAccel);
  if (tracker.accel_oom()) result.oom = true;
  return result;
}

/// NAGphormer-lite: SIGN-style hop-feature precompute, then a hop-token
/// attention readout trained on node batches.
TrainResult TrainNagphormer(const graph::Graph& g, const graph::Splits& splits,
                            graph::Metric metric, const TrainConfig& config) {
  TrainResult result;
  auto& tracker = DeviceTracker::Global();
  tracker.ClearOom();
  tracker.ResetPeak();
  Rng rng(config.seed * 0xD1342543DE82EF95ULL + 3);
  const int hops = 8;
  const int64_t fi = g.features.cols();
  const int64_t d = config.hidden;

  // Precompute hop features Ã^k X on the host (the long precompute column
  // of Table 6).
  Stopwatch pre_sw;
  sparse::CsrMatrix norm = sparse::NormalizeAdjacency(g.adj, config.rho);
  std::vector<Matrix> hop_feats;
  hop_feats.push_back(g.features);
  for (int k = 1; k <= hops; ++k) {
    Matrix next(g.n, fi, Device::kHost);
    norm.SpMM(hop_feats.back(), &next);
    hop_feats.push_back(std::move(next));
  }
  result.stats.precompute_ms = pre_sw.ElapsedMs();

  nn::Linear proj(fi, d, Device::kAccel);
  proj.Init(&rng);
  nn::Parameter query(1, d, Device::kAccel);
  query.InitGlorot(&rng);
  nn::Mlp head(2, d, d, g.num_classes, config.dropout, Device::kAccel);
  head.Init(&rng);
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(d));

  struct BatchCache {
    std::vector<Matrix> raw;      // gathered hop features (batch x fi)
    std::vector<Matrix> tokens;   // projected tokens (batch x d)
    Matrix attn;                  // batch x (hops+1) softmax weights
    Matrix z;                     // batch x d mixed token
  };

  auto forward_batch = [&](const std::vector<int32_t>& batch, bool train,
                           BatchCache* cache, Matrix* logits) {
    const auto b = static_cast<int64_t>(batch.size());
    cache->raw.clear();
    cache->tokens.clear();
    for (int k = 0; k <= hops; ++k) {
      Matrix raw = hop_feats[static_cast<size_t>(k)].GatherRows(batch);
      raw.MoveToDevice(Device::kAccel);
      Matrix tok(b, d, Device::kAccel);
      proj.Forward(raw, &tok);
      cache->raw.push_back(std::move(raw));
      cache->tokens.push_back(std::move(tok));
    }
    // Attention scores s_{ik} = <q, token_ik>/√d, softmax over k.
    cache->attn = Matrix(b, hops + 1, Device::kAccel);
    for (int k = 0; k <= hops; ++k) {
      const Matrix& tok = cache->tokens[static_cast<size_t>(k)];
      for (int64_t i = 0; i < b; ++i) {
        double s = 0.0;
        const float* trow = tok.row(i);
        for (int64_t j = 0; j < d; ++j) s += double(query.value().at(0, j)) * trow[j];
        cache->attn.at(i, k) = static_cast<float>(s * inv_sqrt_d);
      }
    }
    Matrix attn_soft(b, hops + 1, Device::kAccel);
    nn::Softmax(cache->attn, &attn_soft);
    cache->attn = attn_soft;
    cache->z = Matrix(b, d, Device::kAccel);
    for (int k = 0; k <= hops; ++k) {
      const Matrix& tok = cache->tokens[static_cast<size_t>(k)];
      for (int64_t i = 0; i < b; ++i) {
        const float a = cache->attn.at(i, k);
        float* zrow = cache->z.row(i);
        const float* trow = tok.row(i);
        for (int64_t j = 0; j < d; ++j) zrow[j] += a * trow[j];
      }
    }
    head.Forward(cache->z, logits, train, train ? &rng : nullptr);
  };

  auto backward_batch = [&](BatchCache* cache, const Matrix& grad_logits) {
    const int64_t b = cache->z.rows();
    proj.ZeroGrad();
    query.ZeroGrad();
    head.ZeroGrad();
    Matrix grad_z(b, d, Device::kAccel);
    head.Backward(grad_logits, &grad_z);
    // Through the attention mixture.
    std::vector<Matrix> grad_tok;
    for (int k = 0; k <= hops; ++k) grad_tok.emplace_back(b, d, Device::kAccel);
    for (int64_t i = 0; i < b; ++i) {
      // da_k = <grad_z_i, token_ik>; softmax chain; token and query grads.
      std::vector<double> da(static_cast<size_t>(hops) + 1);
      double dot = 0.0;
      for (int k = 0; k <= hops; ++k) {
        const float* trow = cache->tokens[static_cast<size_t>(k)].row(i);
        const float* grow = grad_z.row(i);
        double acc = 0.0;
        for (int64_t j = 0; j < d; ++j) acc += double(grow[j]) * trow[j];
        da[static_cast<size_t>(k)] = acc;
        dot += acc * cache->attn.at(i, k);
      }
      for (int k = 0; k <= hops; ++k) {
        const double a = cache->attn.at(i, k);
        const double ds = a * (da[static_cast<size_t>(k)] - dot) * inv_sqrt_d;
        float* gt = grad_tok[static_cast<size_t>(k)].row(i);
        const float* trow = cache->tokens[static_cast<size_t>(k)].row(i);
        const float* grow = grad_z.row(i);
        for (int64_t j = 0; j < d; ++j) {
          gt[j] = static_cast<float>(a * grow[j] +
                                     ds * query.value().at(0, j));
          query.grad().at(0, j) += static_cast<float>(ds * trow[j]);
        }
      }
    }
    for (int k = 0; k <= hops; ++k) {
      proj.Backward(cache->raw[static_cast<size_t>(k)],
                    grad_tok[static_cast<size_t>(k)], nullptr);
    }
  };

  Matrix all_logits(g.n, g.num_classes, Device::kHost);
  auto eval_rows = [&](const std::vector<int32_t>& rows) {
    for (size_t start = 0; start < rows.size();
         start += static_cast<size_t>(config.batch_size)) {
      const size_t end = std::min(
          rows.size(), start + static_cast<size_t>(config.batch_size));
      std::vector<int32_t> batch(rows.begin() + static_cast<int64_t>(start),
                                 rows.begin() + static_cast<int64_t>(end));
      BatchCache cache;
      Matrix logits;
      forward_batch(batch, /*train=*/false, &cache, &logits);
      for (size_t i = 0; i < batch.size(); ++i) {
        for (int64_t cc = 0; cc < g.num_classes; ++cc) {
          all_logits.at(batch[i], cc) = logits.at(static_cast<int64_t>(i), cc);
        }
      }
    }
  };

  std::vector<int32_t> train_idx = splits.train;
  double train_ms_total = 0.0;
  double best_val = -1.0;
  int64_t step = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Stopwatch sw;
    for (size_t i = train_idx.size(); i > 1; --i) {
      const auto j = static_cast<size_t>(rng.UniformInt(i));
      std::swap(train_idx[i - 1], train_idx[j]);
    }
    for (size_t start = 0; start < train_idx.size();
         start += static_cast<size_t>(config.batch_size)) {
      const size_t end = std::min(
          train_idx.size(), start + static_cast<size_t>(config.batch_size));
      std::vector<int32_t> batch(
          train_idx.begin() + static_cast<int64_t>(start),
          train_idx.begin() + static_cast<int64_t>(end));
      BatchCache cache;
      Matrix logits;
      forward_batch(batch, /*train=*/true, &cache, &logits);
      std::vector<int32_t> batch_labels(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        batch_labels[i] = g.labels[static_cast<size_t>(batch[i])];
      }
      Matrix grad(logits.rows(), logits.cols(), Device::kAccel);
      result.final_train_loss =
          nn::SoftmaxCrossEntropy(logits, batch_labels, {}, &grad);
      backward_batch(&cache, grad);
      ++step;
      proj.AdamStep(config.weights_opt, step);
      query.AdamStep(config.weights_opt, step);
      head.AdamStep(config.weights_opt, step);
    }
    train_ms_total += sw.ElapsedMs();
    if (!config.timing_only && ((epoch + 1) % config.eval_every == 0 ||
                                epoch + 1 == config.epochs)) {
      eval_rows(splits.val);
      const double val =
          EvaluateMetric(metric, all_logits, g.labels, splits.val);
      if (val > best_val) {
        best_val = val;
        result.val_metric = val;
        eval_rows(splits.test);
        result.test_metric =
            EvaluateMetric(metric, all_logits, g.labels, splits.test);
      }
    }
  }
  {
    Stopwatch sw;
    eval_rows(splits.test);
    result.stats.infer_ms = sw.ElapsedMs();
  }
  result.stats.train_ms_per_epoch =
      train_ms_total / std::max(1, config.epochs);
  result.stats.peak_ram_bytes = tracker.peak_bytes(Device::kHost);
  result.stats.peak_accel_bytes = tracker.peak_bytes(Device::kAccel);
  if (tracker.accel_oom()) result.oom = true;
  return result;
}

/// ANS-GT-lite: per step, quadratic self-attention over a sampled node set
/// (straight-through on the attention weights; see DESIGN.md).
TrainResult TrainAnsGt(const graph::Graph& g, const graph::Splits& splits,
                       graph::Metric metric, const TrainConfig& config) {
  TrainResult result;
  auto& tracker = DeviceTracker::Global();
  tracker.ClearOom();
  tracker.ResetPeak();
  Rng rng(config.seed * 0xB5297A4D68D9C175ULL + 5);
  const int64_t fi = g.features.cols();
  const int64_t d = config.hidden;
  const int64_t sample = std::min<int64_t>(512, g.n);

  nn::Linear wq(fi, d, Device::kAccel), wk(fi, d, Device::kAccel),
      wv(fi, d, Device::kAccel);
  wq.Init(&rng);
  wk.Init(&rng);
  wv.Init(&rng);
  nn::Mlp head(2, d, d, g.num_classes, config.dropout, Device::kAccel);
  head.Init(&rng);
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(d));

  auto forward = [&](const std::vector<int32_t>& batch, bool train,
                     Matrix* xs_out, Matrix* attn_out, Matrix* v_out,
                     Matrix* logits) {
    Matrix xs = g.features.GatherRows(batch);
    xs.MoveToDevice(Device::kAccel);
    const int64_t b = xs.rows();
    Matrix q(b, d, Device::kAccel), k(b, d, Device::kAccel),
        v(b, d, Device::kAccel);
    wq.Forward(xs, &q);
    wk.Forward(xs, &k);
    wv.Forward(xs, &v);
    Matrix scores(b, b, Device::kAccel);
    ops::GemmTransB(q, k, &scores);
    ops::Scale(static_cast<float>(inv_sqrt_d), &scores);
    Matrix attn(b, b, Device::kAccel);
    nn::Softmax(scores, &attn);
    Matrix z(b, d, Device::kAccel);
    ops::Gemm(attn, v, &z);
    ops::Axpy(1.0f, v, &z);  // residual connection
    head.Forward(z, logits, train, train ? &rng : nullptr);
    *xs_out = std::move(xs);
    *attn_out = std::move(attn);
    *v_out = std::move(v);
  };

  std::vector<int32_t> train_idx = splits.train;
  double train_ms_total = 0.0;
  double best_val = -1.0;
  int64_t step = 0;
  Stopwatch pre_sw;
  result.stats.precompute_ms = pre_sw.ElapsedMs();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Stopwatch sw;
    // Several adaptively-sampled attention steps per epoch (the model's
    // costly per-epoch loop in the paper's Table 6).
    for (int sub = 0; sub < 5; ++sub) {
      std::vector<int32_t> batch;
      for (int64_t i = 0; i < sample; ++i) {
        batch.push_back(train_idx[static_cast<size_t>(
            rng.UniformInt(static_cast<uint64_t>(train_idx.size())))]);
      }
      Matrix xs, attn, v, logits;
      forward(batch, /*train=*/true, &xs, &attn, &v, &logits);
      std::vector<int32_t> batch_labels(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        batch_labels[i] = g.labels[static_cast<size_t>(batch[i])];
      }
      Matrix grad(logits.rows(), logits.cols(), Device::kAccel);
      result.final_train_loss =
          nn::SoftmaxCrossEntropy(logits, batch_labels, {}, &grad);
      wv.ZeroGrad();
      head.ZeroGrad();
      Matrix grad_z(v.rows(), d, Device::kAccel);
      head.Backward(grad, &grad_z);
      // Straight-through attention: dV = attnᵀ dZ + dZ (residual path).
      Matrix grad_v(v.rows(), d, Device::kAccel);
      ops::GemmTransA(attn, grad_z, &grad_v);
      ops::Axpy(1.0f, grad_z, &grad_v);
      wv.Backward(xs, grad_v, nullptr);
      ++step;
      wv.AdamStep(config.weights_opt, step);
      head.AdamStep(config.weights_opt, step);
    }
    train_ms_total += sw.ElapsedMs();
    if (tracker.accel_oom()) {
      result.oom = true;
      break;
    }
    if (!config.timing_only && ((epoch + 1) % config.eval_every == 0 ||
                                epoch + 1 == config.epochs)) {
      // Evaluate on a sampled context containing the val/test rows batched.
      auto eval_metric = [&](const std::vector<int32_t>& rows) {
        double correct_like = 0.0;
        int64_t total = 0;
        Matrix big(static_cast<int64_t>(rows.size()), g.num_classes,
                   Device::kHost);
        for (size_t start = 0; start < rows.size();
             start += static_cast<size_t>(sample)) {
          const size_t end =
              std::min(rows.size(), start + static_cast<size_t>(sample));
          std::vector<int32_t> ebatch(
              rows.begin() + static_cast<int64_t>(start),
              rows.begin() + static_cast<int64_t>(end));
          Matrix exs, eattn, ev, elogits;
          forward(ebatch, /*train=*/false, &exs, &eattn, &ev, &elogits);
          for (size_t i = 0; i < ebatch.size(); ++i) {
            for (int64_t cc = 0; cc < g.num_classes; ++cc) {
              big.at(static_cast<int64_t>(start + i), cc) =
                  elogits.at(static_cast<int64_t>(i), cc);
            }
          }
        }
        std::vector<int32_t> local_labels(rows.size());
        std::vector<int32_t> local_rows(rows.size());
        for (size_t i = 0; i < rows.size(); ++i) {
          local_labels[i] = g.labels[static_cast<size_t>(rows[i])];
          local_rows[i] = static_cast<int32_t>(i);
        }
        (void)correct_like;
        (void)total;
        return EvaluateMetric(metric, big, local_labels, local_rows);
      };
      const double val = eval_metric(splits.val);
      if (val > best_val) {
        best_val = val;
        result.val_metric = val;
        result.test_metric = eval_metric(splits.test);
      }
    }
  }
  {
    Stopwatch sw;
    std::vector<int32_t> batch(splits.test.begin(),
                               splits.test.begin() +
                                   std::min<size_t>(splits.test.size(),
                                                    static_cast<size_t>(sample)));
    Matrix xs, attn, v, logits;
    forward(batch, /*train=*/false, &xs, &attn, &v, &logits);
    result.stats.infer_ms = sw.ElapsedMs();
  }
  result.stats.train_ms_per_epoch =
      train_ms_total / std::max(1, config.epochs);
  result.stats.peak_ram_bytes = tracker.peak_bytes(Device::kHost);
  result.stats.peak_accel_bytes = tracker.peak_bytes(Device::kAccel);
  if (tracker.accel_oom()) result.oom = true;
  return result;
}

}  // namespace

std::string BaselineLabel(BaselineKind kind, Backend backend) {
  std::string base;
  switch (kind) {
    case BaselineKind::kGcn: base = "GCN"; break;
    case BaselineKind::kSage: base = "GraphSAGE"; break;
    case BaselineKind::kChebNet: base = "ChebNet"; break;
    case BaselineKind::kNagphormer: return "NAGphormer-lite";
    case BaselineKind::kAnsGt: return "ANS-GT-lite";
  }
  return base + (backend == Backend::kSp ? " (SP)" : " (EI)");
}

TrainResult TrainBaseline(const graph::Graph& g, const graph::Splits& splits,
                          graph::Metric metric, BaselineKind kind,
                          Backend backend, const TrainConfig& config) {
  switch (kind) {
    case BaselineKind::kNagphormer:
      return TrainNagphormer(g, splits, metric, config);
    case BaselineKind::kAnsGt:
      return TrainAnsGt(g, splits, metric, config);
    default:
      return TrainMessagePassing(g, splits, metric, kind, backend, config);
  }
}

}  // namespace sgnn::models

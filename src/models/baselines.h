// Out-of-framework baselines for Table 6: iterative message-passing GNNs
// (GCN, GraphSAGE, ChebNet) over two propagation backends, plus scalable
// graph-transformer baselines (NAGphormer-lite, ANS-GT-lite).
//
// The "SP" backend streams CSR SpMM; the "EI" backend materializes one
// message per edge (torch_geometric.EdgeIndex behaviour), whose O(mF)
// buffer is what drives the paper's EI OOM entries.

#ifndef SGNN_MODELS_BASELINES_H_
#define SGNN_MODELS_BASELINES_H_

#include <string>

#include "graph/graph.h"
#include "models/trainer.h"
#include "sparse/edge_index.h"

namespace sgnn::models {

/// Propagation backend for message-passing baselines.
enum class Backend { kSp, kEi };

/// Baseline architecture.
enum class BaselineKind {
  kGcn,        ///< H' = ReLU(Ã H W)
  kSage,       ///< H' = ReLU(H W1 + Ã H W2)
  kChebNet,    ///< H' = ReLU(Σ_{k<=2} T_cheb^k(L̃) H W_k)
  kNagphormer, ///< hop-token transformer with SIGN-style precompute
  kAnsGt,      ///< adaptive-sampling transformer (quadratic attention)
};

/// Human-readable "GCN (SP)" style label.
std::string BaselineLabel(BaselineKind kind, Backend backend);

/// Trains the baseline full-batch (transformers use their own batched
/// pipeline with a precompute stage) and reports paper Table 6 columns.
TrainResult TrainBaseline(const graph::Graph& g, const graph::Splits& splits,
                          graph::Metric metric, BaselineKind kind,
                          Backend backend, const TrainConfig& config);

}  // namespace sgnn::models

#endif  // SGNN_MODELS_BASELINES_H_

#include "models/iterative.h"

#include <algorithm>

#include "core/registry.h"
#include "eval/table.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "sparse/adjacency.h"
#include "tensor/ops.h"

namespace sgnn::models {

namespace {

using eval::Stopwatch;

/// One iterative layer: h -> ReLU(g(L̃) h W + b). Caches what backward needs.
struct Layer {
  std::unique_ptr<filters::SpectralFilter> filter;  // one-hop
  nn::Linear linear;
  // Caches from the last training forward.
  Matrix input;       // h^j
  Matrix propagated;  // g(L̃) h^j
  Matrix preact;      // propagated W + b
};

}  // namespace

TrainResult TrainIterative(const graph::Graph& g, const graph::Splits& splits,
                           graph::Metric metric,
                           const IterativeConfig& config) {
  TrainResult result;
  auto& tracker = DeviceTracker::Global();
  tracker.ClearOom();
  tracker.ResetPeak();
  const TrainConfig& base = config.base;
  Rng rng(base.seed * 0x94D049BB133111EBULL + 37);

  sparse::CsrMatrix norm = sparse::NormalizeAdjacency(g.adj, base.rho);
  norm.MoveToDevice(Device::kAccel);
  Matrix x = g.features.CloneTo(Device::kAccel);
  filters::FilterContext ctx{&norm, Device::kAccel};

  const int64_t fi = g.features.cols();
  std::vector<Layer> layers(static_cast<size_t>(config.layers));
  int64_t in_dim = fi;
  for (int j = 0; j < config.layers; ++j) {
    auto& layer = layers[static_cast<size_t>(j)];
    auto filter = filters::CreateFilter(config.layer_filter, /*hops=*/1, {},
                                        in_dim);
    SGNN_CHECK(filter.ok(), "TrainIterative: unknown layer filter");
    layer.filter = filter.MoveValue();
    layer.filter->ResetParameters(&rng);
    const int64_t out_dim =
        (j + 1 == config.layers) ? g.num_classes : base.hidden;
    layer.linear = nn::Linear(in_dim, out_dim, Device::kAccel);
    layer.linear.Init(&rng);
    in_dim = out_dim;
  }

  auto forward = [&](bool train, Matrix* logits) {
    Matrix h = x;
    for (int j = 0; j < config.layers; ++j) {
      auto& layer = layers[static_cast<size_t>(j)];
      Matrix prop;
      layer.filter->Forward(ctx, h, &prop, train);
      Matrix z(prop.rows(), layer.linear.out_dim(), Device::kAccel);
      layer.linear.Forward(prop, &z);
      if (train) {
        layer.input = h;
        layer.propagated = prop;
        layer.preact = z;
      }
      if (j + 1 < config.layers) {
        float* zd = z.data();
        for (int64_t i = 0; i < z.size(); ++i) {
          zd[i] = zd[i] > 0 ? zd[i] : 0.0f;
        }
      }
      h = std::move(z);
    }
    *logits = std::move(h);
  };

  auto backward = [&](const Matrix& grad_logits) {
    Matrix grad = grad_logits;
    for (int j = config.layers - 1; j >= 0; --j) {
      auto& layer = layers[static_cast<size_t>(j)];
      if (j + 1 < config.layers) {
        // Undo the ReLU of this layer's output.
        const float* pd = layer.preact.data();
        float* gd = grad.data();
        for (int64_t i = 0; i < grad.size(); ++i) {
          if (pd[i] <= 0.0f) gd[i] = 0.0f;
        }
      }
      Matrix grad_prop(layer.propagated.rows(), layer.propagated.cols(),
                       Device::kAccel);
      layer.linear.Backward(layer.propagated, grad, &grad_prop);
      Matrix grad_h;
      layer.filter->Backward(ctx, grad_prop, j > 0 ? &grad_h : nullptr);
      layer.filter->ClearCache();
      if (j > 0) grad = std::move(grad_h);
    }
  };

  double best_val = -1.0;
  double train_ms_total = 0.0;
  int64_t step = 0;
  for (int epoch = 0; epoch < base.epochs; ++epoch) {
    Stopwatch sw;
    Matrix logits;
    forward(/*train=*/true, &logits);
    Matrix grad(logits.rows(), logits.cols(), Device::kAccel);
    result.final_train_loss =
        nn::SoftmaxCrossEntropy(logits, g.labels, splits.train, &grad);
    for (auto& layer : layers) {
      layer.linear.ZeroGrad();
      layer.filter->params().ZeroGrad();
    }
    backward(grad);
    ++step;
    for (auto& layer : layers) {
      layer.linear.AdamStep(base.weights_opt, step);
      layer.filter->params().AdamStep(base.filter_opt, step);
    }
    train_ms_total += sw.ElapsedMs();
    if (tracker.accel_oom()) {
      result.oom = true;
      break;
    }
    if (!base.timing_only &&
        ((epoch + 1) % base.eval_every == 0 || epoch + 1 == base.epochs)) {
      Matrix elogits;
      forward(/*train=*/false, &elogits);
      const double val = EvaluateMetric(metric, elogits, g.labels, splits.val);
      if (val > best_val) {
        best_val = val;
        result.val_metric = val;
        result.test_metric =
            EvaluateMetric(metric, elogits, g.labels, splits.test);
        result.test_logits = elogits.CloneTo(Device::kHost);
      }
    }
  }
  {
    Stopwatch sw;
    Matrix elogits;
    forward(/*train=*/false, &elogits);
    result.stats.infer_ms = sw.ElapsedMs();
  }
  result.stats.train_ms_per_epoch =
      train_ms_total / std::max(1, base.epochs);
  result.stats.peak_ram_bytes = tracker.peak_bytes(Device::kHost);
  result.stats.peak_accel_bytes = tracker.peak_bytes(Device::kAccel);
  if (tracker.accel_oom()) result.oom = true;
  return result;
}

}  // namespace sgnn::models

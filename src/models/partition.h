// Graph-partition (GP) training scheme (paper Table 2, Section 2.2).
//
// The model-agnostic scalability workaround: partition the node set,
// drop cross-partition edges, and train full-batch per part. Memory scales
// with the largest part instead of the graph — but the severed topology
// "undermines GNN expressiveness" (paper), which the scheme-ablation bench
// quantifies against FB and MB.

#ifndef SGNN_MODELS_PARTITION_H_
#define SGNN_MODELS_PARTITION_H_

#include <vector>

#include "core/filter.h"
#include "graph/graph.h"
#include "models/trainer.h"

namespace sgnn::models {

/// GP-scheme configuration.
struct PartitionConfig {
  TrainConfig base;
  /// Number of parts; each part trains as an independent full batch.
  int num_parts = 8;
};

/// BFS-grown node partition: parts are connected-ish chunks of roughly
/// n / num_parts nodes (ClusterGCN-flavoured, METIS substitute).
/// Returns a part id per node.
std::vector<int32_t> BfsPartition(const graph::Graph& g, int num_parts,
                                  uint64_t seed);

/// Fraction of (directed, non-loop) edges severed by the partition.
double CutFraction(const graph::Graph& g, const std::vector<int32_t>& parts);

/// Trains the decoupled model under the GP scheme: per-epoch sweep over
/// parts, each propagating only within its induced subgraph.
TrainResult TrainGraphPartition(const graph::Graph& g,
                                const graph::Splits& splits,
                                graph::Metric metric,
                                filters::SpectralFilter* filter,
                                const PartitionConfig& config);

}  // namespace sgnn::models

#endif  // SGNN_MODELS_PARTITION_H_

// Link-prediction pipeline (paper Section 6.1.2, Figure 6).
//
// MB-only by necessity: the model scores κ·m positive/negative node pairs
// through an MLP on Hadamard products of filtered embeddings, so the
// transformation cost O(κ m F²) dominates — the figure's takeaway.

#ifndef SGNN_MODELS_LINKPRED_H_
#define SGNN_MODELS_LINKPRED_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/filter.h"
#include "graph/graph.h"
#include "models/trainer.h"

namespace sgnn::models {

/// Link-prediction configuration on top of TrainConfig.
struct LinkPredConfig {
  TrainConfig base;
  /// Negative samples per positive edge (paper's κ is 2-10).
  int neg_ratio = 2;
  /// Fraction of edges held out as test positives.
  double test_frac = 0.2;
};

/// Link-prediction outcome.
struct LinkPredResult {
  bool oom = false;
  double test_auc = 0.0;
  StageStats stats;
};

/// Runs decoupled MB link prediction with the given filter: precompute
/// filtered embeddings, then train an MLP scorer on edge batches.
LinkPredResult TrainLinkPrediction(const graph::Graph& g,
                                   filters::SpectralFilter* filter,
                                   const LinkPredConfig& config);

}  // namespace sgnn::models

#endif  // SGNN_MODELS_LINKPRED_H_

// Decoupled spectral-GNN model and the two learning schemes (paper Fig. 1):
//   * Full-batch (FB): H = φ1(g(L̃) φ0(X)); graph, representations, and
//     weights all live on the accelerator; filtering re-runs every epoch.
//   * Mini-batch (MB): g's per-hop terms are precomputed once on the host;
//     only batch slices move to the accelerator; φ0 is empty and φ1 trains
//     on batches (paper Table 4 universal settings).

#ifndef SGNN_MODELS_TRAINER_H_
#define SGNN_MODELS_TRAINER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/filter.h"
#include "graph/graph.h"
#include "nn/mlp.h"
#include "tensor/status.h"

namespace sgnn::models {

/// Training-run configuration (paper Table 4 universal + individual).
struct TrainConfig {
  int epochs = 120;
  int eval_every = 5;          ///< validation cadence (epochs)
  int patience = 1000;         ///< early-stop patience in eval rounds
  int hidden = 64;             ///< hidden width F
  int phi0_layers = 1;         ///< FB default 1; MB must use 0
  int phi1_layers = 1;         ///< FB default 1; MB default 2
  double dropout = 0.2;
  nn::AdamConfig weights_opt{5e-3, 0.9, 0.999, 1e-8, 5e-5};  ///< φ0/φ1
  nn::AdamConfig filter_opt{5e-2, 0.9, 0.999, 1e-8, 0.0};    ///< θ/γ
  int batch_size = 4096;       ///< MB only
  double rho = 0.5;            ///< graph normalization coefficient
  uint64_t seed = 1;
  /// Timing-only mode: skips metric tracking niceties (used by efficiency
  /// benches to keep runs short); epochs still execute fully.
  bool timing_only = false;
  /// Per-run wall-clock deadline in milliseconds (0 = none). When exceeded
  /// the run stops and is marked timed_out — the cell-level analogue of the
  /// paper's "(OOM)" table entries.
  double deadline_ms = 0.0;
  /// NaN/Inf divergence detection on the training loss and loss gradient.
  bool divergence_check = true;
  /// Capture the trained φ1, filter θ snapshot, and (MB) the precomputed
  /// terms in TrainResult::exported, the artifact the serving checkpoint
  /// (serve/checkpoint.h) persists. MB-only: serving needs the decoupled
  /// per-hop terms, which full-batch training never materializes.
  bool export_model = false;
  /// Lazy op-graph execution (docs/OPGRAPH.md): MB precompute and the FB
  /// no-cache inference passes record onto an op-graph and run fused with
  /// planned buffers. Bit-identical to eager; filters without lazy support
  /// silently keep the eager path. Training forwards (cache=true) stay
  /// eager — the backward pass consumes the cached basis terms.
  bool lazy = false;
  /// Sharded propagation (docs/SHARDING.md): when > 1, the propagation
  /// matrix is split into this many edge-cut shards and every hop runs
  /// shard-by-shard through a shard::ShardedSpmmOperator under per-shard
  /// accelerator sub-budgets. FB keeps graph and representations
  /// host-resident and streams only shard working sets through the
  /// accelerator; MB precompute streams shard hops the same way. Results
  /// are bit-identical to unsharded at any shard count and thread count.
  int num_shards = 0;
  /// Per-shard accelerator budget in bytes (0 = accel capacity /
  /// num_shards). A shard whose working set exceeds it spills host-side
  /// instead of failing; spills are counted in StageStats::shard_spills.
  size_t shard_budget_bytes = 0;
};

/// Per-stage efficiency measurements (paper Tables 9/11, Figure 2).
struct StageStats {
  double precompute_ms = 0.0;    ///< MB graph precomputation (0 for FB)
  double train_ms_per_epoch = 0.0;
  double infer_ms = 0.0;
  size_t peak_ram_bytes = 0;     ///< host high-water mark
  size_t peak_accel_bytes = 0;   ///< simulated accelerator high-water mark
  /// Host threads the kernel layer used for this run (parallel::NumThreads()
  /// at run start); journaled so efficiency rows are comparable across
  /// machines and SGNN_NUM_THREADS settings.
  int threads = 1;
  /// Shard count propagation ran with (0 = unsharded).
  int shards = 0;
  /// Shard-hops whose working set exceeded the per-shard accelerator
  /// sub-budget and ran host-side (journaled as SHARD_SPILL cells).
  int64_t shard_spills = 0;
};

/// Trained-model artifact captured by TrainMiniBatch when
/// TrainConfig::export_model is set: everything the serving layer needs to
/// answer node queries without the graph — Precompute once, then cheap
/// per-node CombineTerms + φ1 at request time (paper Section 2.2).
struct ExportedModel {
  nn::Mlp phi1;                ///< trained transformation, weights on accel
  std::vector<Matrix> terms;   ///< host-resident per-hop representations
  std::vector<double> theta;   ///< filter θ/γ snapshot at export time
};

/// Outcome of one training run.
struct TrainResult {
  bool oom = false;              ///< simulated accelerator over capacity
  bool diverged = false;         ///< NaN/Inf loss or gradient detected
  bool timed_out = false;        ///< wall-clock deadline exceeded
  /// Non-OK when the run aborted (OOM / NumericalError / DeadlineExceeded /
  /// precompute failure); carries the human-readable reason.
  Status status;
  double val_metric = 0.0;
  double test_metric = 0.0;
  double final_train_loss = 0.0;
  StageStats stats;
  /// Test predictions (logits) at the best validation epoch; empty when
  /// timing_only.
  Matrix test_logits;
  /// Filter output embeddings at the final epoch (Figure 8 analysis); only
  /// captured when `capture_embeddings` was set in the call.
  Matrix embeddings;
  /// Serving artifact; null unless TrainConfig::export_model was set and
  /// the run completed without tripping a guard.
  std::shared_ptr<ExportedModel> exported;
};

/// Runs full-batch training of the decoupled model with the given filter.
/// The filter's parameters are reset from `config.seed` before training.
TrainResult TrainFullBatch(const graph::Graph& g, const graph::Splits& splits,
                           graph::Metric metric,
                           filters::SpectralFilter* filter,
                           const TrainConfig& config,
                           bool capture_embeddings = false);

/// Runs decoupled mini-batch training: host-side precompute, batched
/// training/inference on the accelerator. Requires
/// filter->SupportsMiniBatch(); returns oom=false by construction unless the
/// batch itself exceeds capacity.
TrainResult TrainMiniBatch(const graph::Graph& g, const graph::Splits& splits,
                           graph::Metric metric,
                           filters::SpectralFilter* filter,
                           const TrainConfig& config,
                           bool capture_embeddings = false);

/// Evaluates `metric` on the given rows of `logits`.
double EvaluateMetric(graph::Metric metric, const Matrix& logits,
                      const std::vector<int32_t>& labels,
                      const std::vector<int32_t>& rows);

}  // namespace sgnn::models

#endif  // SGNN_MODELS_TRAINER_H_

// Iterative spectral architecture (paper Section 2.1 / Appendix A.1).
//
// Table 1 marks several models "I": each hop of propagation is interleaved
// with a weight transformation and non-linearity,
//   H^{j+1} = ReLU( g_j(L̃) H^j W_j ),
// where g_j is a one-hop spectral filter with its own parameters. The paper
// argues iterative and decoupled architectures carry the same propagation
// expressiveness; the architecture ablation bench compares them empirically
// (accuracy, per-epoch time, memory).

#ifndef SGNN_MODELS_ITERATIVE_H_
#define SGNN_MODELS_ITERATIVE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/filter.h"
#include "graph/graph.h"
#include "models/trainer.h"

namespace sgnn::models {

/// Iterative-architecture configuration.
struct IterativeConfig {
  TrainConfig base;
  /// Number of propagation+transformation layers J.
  int layers = 2;
  /// One-hop filter instantiated per layer ("linear", "var_linear",
  /// "fbgnn1", "acmgnn1", "fagnn", ...). Each layer owns its parameters.
  std::string layer_filter = "linear";
};

/// Trains the iterative spectral model: per-layer one-hop filters g_j
/// interleaved with Linear + ReLU transformations, softmax head on top.
TrainResult TrainIterative(const graph::Graph& g, const graph::Splits& splits,
                           graph::Metric metric, const IterativeConfig& config);

}  // namespace sgnn::models

#endif  // SGNN_MODELS_ITERATIVE_H_

#include "models/regression.h"

#include <cmath>

#include "eval/metrics.h"
#include "nn/loss.h"
#include "sparse/adjacency.h"
#include "tensor/ops.h"

namespace sgnn::models {

RegressionProblem BuildRegressionProblem(const graph::Graph& g,
                                         const RegressionConfig& config) {
  RegressionProblem problem;
  problem.norm = sparse::NormalizeAdjacency(g.adj, config.rho);
  Matrix lap = eval::DenseLaplacian(problem.norm);
  auto eig = eval::JacobiEigen(lap);
  SGNN_CHECK(eig.ok(), "regression graph eigendecomposition failed");
  problem.eig = eig.MoveValue();
  Rng rng(config.seed * 0xA24BAED4963EE407ULL + 19);
  problem.x = Matrix(g.n, config.signal_dim, Device::kHost);
  problem.x.FillNormal(&rng);
  return problem;
}

RegressionResult RunSignalRegression(
    const RegressionProblem& problem,
    const std::function<double(double)>& g_star,
    filters::SpectralFilter* filter, const RegressionConfig& config) {
  RegressionResult result;
  Rng rng(config.seed * 0xE220A8397B1DCDAFULL + 23);
  filter->ResetParameters(&rng);

  // Exact spectral target z = U g*(Λ) Uᵀ x.
  std::vector<double> response(problem.eig.values.size());
  for (size_t i = 0; i < response.size(); ++i) {
    // Clamp eigenvalues into [0, 2] against numerical round-off.
    const double lam = std::min(2.0, std::max(0.0, problem.eig.values[i]));
    response[i] = g_star(lam);
  }
  const Matrix target = eval::SpectralApply(problem.eig, response, problem.x);

  filters::FilterContext ctx{&problem.norm, Device::kHost};

  if (filter->type() == filters::FilterType::kFixed) {
    // Fixed filter: fit only a global scale s = <y, z>/<y, y>.
    Matrix y;
    filter->Forward(ctx, problem.x, &y, /*cache=*/false);
    const double yy = ops::Dot(y, y);
    const double yz = ops::Dot(y, target);
    const double s = yy > 1e-12 ? yz / yy : 0.0;
    ops::Scale(static_cast<float>(s), &y);
    result.r2 = eval::R2Score(y, target);
    result.final_mse = 0.0;
    return result;
  }

  int64_t step = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Matrix y;
    filter->Forward(ctx, problem.x, &y, /*cache=*/true);
    Matrix grad(y.rows(), y.cols(), Device::kHost);
    result.final_mse = nn::MseLoss(y, target, &grad);
    filter->params().ZeroGrad();
    filter->Backward(ctx, grad, nullptr);
    ++step;
    filter->params().AdamStep(config.filter_opt, step);
    filter->ClearCache();
  }
  Matrix y;
  filter->Forward(ctx, problem.x, &y, /*cache=*/false);
  result.r2 = eval::R2Score(y, target);
  return result;
}

}  // namespace sgnn::models

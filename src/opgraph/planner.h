// Liveness-based memory planner.
//
// Walks the node schedule once to compute per-value last-use positions, then
// assigns every non-input value either (a) a caller-owned output slot — the
// destination pinned by MarkOutput, propagated *backwards* through
// alias-legal chains so an accumulator (Zero → Axpy → Axpy…) lives in the
// caller's matrix from the start, exactly like the eager in-place code — or
// (b) a buffer from an exact-shape reuse pool, aliasing the dying input of
// Scale/Elementwise (in0) and Axpy (in1, the accumulate side) in place when
// legal.
//
// Alias legality: the source value must be pool-backed (not external, not
// pinned to an output), die at the consuming node, and match the output
// shape. SpMM / GEMM / fused outputs are never aliased — their kernels read
// inputs while writing the output.
//
// The emitted plan predicts peak bytes exactly: the executor allocates all
// output slots and pool buffers up front and frees nothing until teardown,
// so `DeviceTracker` peak growth during execution equals
// `planned_peak_bytes` to the byte (asserted in tests/opgraph_test.cc and
// journaled by bench_fig2_breakdown).
//
// Planning is a pure function of the graph — same graph, same plan — which
// keeps lazy execution deterministic and resumable.

#ifndef SGNN_OPGRAPH_PLANNER_H_
#define SGNN_OPGRAPH_PLANNER_H_

#include <cstdint>
#include <vector>

#include "opgraph/graph.h"

namespace sgnn::opgraph {

/// Buffer-assignment result. `pool_buffer[v]` / `output_slot[v]` are -1 when
/// the value is not backed by that storage class; graph inputs have both -1.
struct Plan {
  struct BufferSpec {
    int64_t rows = 0;
    int64_t cols = 0;
    size_t bytes = 0;
  };
  struct OutputSpec {
    Matrix* dest = nullptr;
    int64_t rows = 0;
    int64_t cols = 0;
    size_t bytes = 0;
  };

  std::vector<int> pool_buffer;   ///< per value: pool buffer index or -1
  std::vector<int> output_slot;   ///< per value: output slot index or -1
  std::vector<BufferSpec> buffers;
  std::vector<OutputSpec> outputs;

  size_t pool_bytes = 0;    ///< sum over buffers
  size_t output_bytes = 0;  ///< sum over outputs
  /// Exact DeviceTracker peak growth of Execute(): pool + outputs.
  size_t planned_peak_bytes = 0;
};

/// Builds the buffer plan for `graph`'s current (possibly fused) schedule.
Plan PlanBuffers(const Graph& graph);

}  // namespace sgnn::opgraph

#endif  // SGNN_OPGRAPH_PLANNER_H_

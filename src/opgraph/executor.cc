#include "opgraph/executor.h"

#include <vector>

#include "opgraph/fusion.h"
#include "tensor/device.h"
#include "tensor/ops.h"

namespace sgnn::opgraph {

namespace {

class Storage {
 public:
  Storage(const Graph& graph, const Plan& plan)
      : graph_(graph), plan_(plan), pool_(plan.buffers.size()) {
    const Device device = graph.device();
    for (size_t b = 0; b < plan.buffers.size(); ++b) {
      pool_[b] = Matrix(plan.buffers[b].rows, plan.buffers[b].cols, device);
    }
    for (const Plan::OutputSpec& o : plan_.outputs) {
      *o.dest = Matrix(o.rows, o.cols, device);
    }
  }

  /// Mutable storage backing value `v` (never an external input).
  Matrix* Dest(ValueId v) {
    const int slot = plan_.output_slot[static_cast<size_t>(v)];
    if (slot >= 0) return plan_.outputs[static_cast<size_t>(slot)].dest;
    const int buf = plan_.pool_buffer[static_cast<size_t>(v)];
    SGNN_CHECK(buf >= 0, "opgraph: value has no writable storage");
    return &pool_[static_cast<size_t>(buf)];
  }

  /// Read-only view of value `v` (external input, output slot, or pool).
  const Matrix& Src(ValueId v) {
    const ValueInfo& info = graph_.values()[static_cast<size_t>(v)];
    if (info.is_input()) return *info.external;
    return *Dest(v);
  }

 private:
  const Graph& graph_;
  const Plan& plan_;
  std::vector<Matrix> pool_;
};

}  // namespace

Status Execute(const Graph& graph, const Plan& plan) {
  DeviceTracker& tracker = DeviceTracker::Global();
  const bool oom_before = tracker.accel_oom();

  // All allocations happen here; peak grows by exactly planned_peak_bytes.
  Storage storage(graph, plan);

  // Marked inputs have no defining node — copy them out first (the eager
  // Precompute path emits T_0 = x as a copy).
  for (ValueId v = 0; v < graph.num_values(); ++v) {
    const ValueInfo& info = graph.values()[static_cast<size_t>(v)];
    if (info.is_input() && info.output != nullptr) {
      ops::Copy(*info.external, info.output);
    }
  }

  for (const Node& n : graph.nodes()) {
    Matrix* out = storage.Dest(n.out);
    switch (n.kind) {
      case OpKind::kZero:
        out->Fill(0.0f);
        break;
      case OpKind::kSpmm:
        n.spmm->Apply(storage.Src(n.in0), out);
        break;
      case OpKind::kScale: {
        const Matrix& x = storage.Src(n.in0);
        if (&x != out) ops::Copy(x, out);
        ops::Scale(n.alpha, out);
        break;
      }
      case OpKind::kAxpy: {
        const Matrix& y = storage.Src(n.in1);
        if (&y != out) ops::Copy(y, out);
        ops::Axpy(n.alpha, storage.Src(n.in0), out);
        break;
      }
      case OpKind::kGemm:
        ops::Gemm(storage.Src(n.in0), storage.Src(n.in1), out);
        break;
      case OpKind::kElementwise: {
        const Matrix& x = storage.Src(n.in0);
        if (&x != out) ops::Copy(x, out);
        ops::ReluInPlace(out);
        break;
      }
      case OpKind::kFusedSpmmAffine:
        // Exact kernel order of the unfused chain: SpMM, Scale, Axpy(ci),
        // Axpy(cp) — bit-identical to eager, minus the scratch copy.
        n.spmm->Apply(storage.Src(n.in0), out);
        ops::Scale(n.ca, out);
        if (n.in1 != kNoValue) ops::Axpy(n.ci, storage.Src(n.in1), out);
        if (n.in2 != kNoValue) ops::Axpy(n.cp, storage.Src(n.in2), out);
        break;
    }
  }

  if (!oom_before && tracker.accel_oom()) {
    return Status::OutOfMemory(
        "opgraph: plan execution latched simulated accelerator OOM");
  }
  return Status::OK();
}

Status RunPipeline(Graph* graph, const PipelineOptions& options,
                   PipelineStats* stats) {
  int fused = 0;
  if (options.fuse) fused = FuseSpmmChains(graph);
  const Plan plan = PlanBuffers(*graph);
  if (stats != nullptr) {
    stats->nodes = static_cast<int>(graph->nodes().size());
    stats->fused_spmm_chains = fused;
    stats->pool_buffers = static_cast<int>(plan.buffers.size());
    stats->pool_bytes = plan.pool_bytes;
    stats->output_bytes = plan.output_bytes;
    stats->planned_peak_bytes = plan.planned_peak_bytes;
  }
  return Execute(*graph, plan);
}

}  // namespace sgnn::opgraph

#include "opgraph/planner.h"

#include <map>
#include <utility>
#include <vector>

namespace sgnn::opgraph {

namespace {

// The input a node may legally overwrite in place: the eager code's in-place
// target. SpMM/GEMM/fused kernels read their inputs while writing the
// output, so they never alias.
ValueId AliasSource(const Node& n) {
  switch (n.kind) {
    case OpKind::kScale:
    case OpKind::kElementwise:
      return n.in0;
    case OpKind::kAxpy:
      return n.in1;
    default:
      return kNoValue;
  }
}

}  // namespace

Plan PlanBuffers(const Graph& graph) {
  const std::vector<Node>& nodes = graph.nodes();
  const std::vector<ValueInfo>& values = graph.values();
  const int num_values = graph.num_values();

  Plan plan;
  plan.pool_buffer.assign(static_cast<size_t>(num_values), -1);
  plan.output_slot.assign(static_cast<size_t>(num_values), -1);

  // Last consuming node per value (-1 = never consumed).
  std::vector<int> last_use(static_cast<size_t>(num_values), -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (const ValueId v : {nodes[i].in0, nodes[i].in1, nodes[i].in2}) {
      if (v == kNoValue) continue;
      const ValueInfo& info = values[static_cast<size_t>(v)];
      SGNN_CHECK(info.is_input() || info.def >= 0,
                 "opgraph: node consumes a value with no live definition");
      last_use[static_cast<size_t>(v)] = static_cast<int>(i);
    }
  }

  // Output slots: one per marked destination, then propagated backwards
  // through alias-legal chains so e.g. Zero → Axpy → … → marked accumulator
  // computes in the caller's matrix from the first node.
  for (ValueId v = 0; v < num_values; ++v) {
    const ValueInfo& info = values[static_cast<size_t>(v)];
    if (info.output == nullptr) continue;
    Plan::OutputSpec spec;
    spec.dest = info.output;
    spec.rows = info.rows;
    spec.cols = info.cols;
    spec.bytes = info.bytes();
    plan.output_slot[static_cast<size_t>(v)] =
        static_cast<int>(plan.outputs.size());
    plan.outputs.push_back(spec);
  }
  for (int i = static_cast<int>(nodes.size()) - 1; i >= 0; --i) {
    const Node& n = nodes[static_cast<size_t>(i)];
    const int slot = plan.output_slot[static_cast<size_t>(n.out)];
    if (slot < 0) continue;
    const ValueId src = AliasSource(n);
    if (src == kNoValue) continue;
    const ValueInfo& si = values[static_cast<size_t>(src)];
    if (si.is_input()) continue;
    if (plan.output_slot[static_cast<size_t>(src)] >= 0) continue;
    if (last_use[static_cast<size_t>(src)] != i) continue;
    if (si.rows != values[static_cast<size_t>(n.out)].rows ||
        si.cols != values[static_cast<size_t>(n.out)].cols) {
      continue;
    }
    plan.output_slot[static_cast<size_t>(src)] = slot;
  }

  // Forward pass: aliasing + exact-shape free-list reuse. Storage for a
  // node's output is assigned *before* its dying inputs are released — a
  // fresh acquisition must never hand out a buffer another operand of the
  // same node is still reading.
  std::map<std::pair<int64_t, int64_t>, std::vector<int>> free_list;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    const size_t out = static_cast<size_t>(n.out);
    if (plan.output_slot[out] < 0) {
      int reuse = -1;
      const ValueId src = AliasSource(n);
      if (src != kNoValue) {
        const ValueInfo& si = values[static_cast<size_t>(src)];
        if (!si.is_input() &&
            plan.output_slot[static_cast<size_t>(src)] < 0 &&
            plan.pool_buffer[static_cast<size_t>(src)] >= 0 &&
            last_use[static_cast<size_t>(src)] == static_cast<int>(i) &&
            si.rows == values[out].rows && si.cols == values[out].cols) {
          reuse = plan.pool_buffer[static_cast<size_t>(src)];
        }
      }
      if (reuse < 0) {
        const std::pair<int64_t, int64_t> key(values[out].rows,
                                              values[out].cols);
        auto it = free_list.find(key);
        if (it != free_list.end() && !it->second.empty()) {
          reuse = it->second.back();
          it->second.pop_back();
        } else {
          Plan::BufferSpec spec;
          spec.rows = values[out].rows;
          spec.cols = values[out].cols;
          spec.bytes = values[out].bytes();
          reuse = static_cast<int>(plan.buffers.size());
          plan.buffers.push_back(spec);
        }
      }
      plan.pool_buffer[out] = reuse;
    }
    // Release pool buffers whose value dies at this node (unless the buffer
    // was just transferred to the output by aliasing).
    ValueId released[3] = {kNoValue, kNoValue, kNoValue};
    int num_released = 0;
    for (const ValueId v : {n.in0, n.in1, n.in2}) {
      if (v == kNoValue || last_use[static_cast<size_t>(v)] !=
                               static_cast<int>(i)) {
        continue;
      }
      bool seen = false;
      for (int r = 0; r < num_released; ++r) seen = seen || released[r] == v;
      if (seen) continue;
      released[num_released++] = v;
      const int buf = plan.pool_buffer[static_cast<size_t>(v)];
      if (buf < 0 || buf == plan.pool_buffer[out]) continue;
      free_list[{values[static_cast<size_t>(v)].rows,
                 values[static_cast<size_t>(v)].cols}]
          .push_back(buf);
    }
  }

  for (const Plan::BufferSpec& b : plan.buffers) plan.pool_bytes += b.bytes;
  for (const Plan::OutputSpec& o : plan.outputs) {
    plan.output_bytes += o.bytes;
  }
  plan.planned_peak_bytes = plan.pool_bytes + plan.output_bytes;
  return plan;
}

}  // namespace sgnn::opgraph

// SpMM-chain fusion pass.
//
// The polynomial recurrence T_k = (ca·Ã + ci·I)T_{k-1} + cp·T_{k-2} records,
// per hop, the chain
//
//   s = Spmm(A, cur); u = Scale(ca, s); [v = Axpy(ci, cur, u);]
//   [w = Axpy(cp, prev, v);]
//
// where s/u/v are single-use intermediates. FuseSpmmChains collapses each
// such chain into one kFusedSpmmAffine node whose executor replay performs
// the identical kernel sequence (SpMM into the destination buffer, Scale in
// place, then the Axpys) — eliminating the separate scratch + copy of the
// eager path and shrinking the K-hop working set to the recurrence's three
// rotating terms.
//
// Legality (docs/OPGRAPH.md): a producer is absorbed only when its value has
// exactly one consumer and is not a marked output; the Axpy must accumulate
// into the chain (in1 == chain value); at most two Axpys are absorbed (ci,
// then cp — the recurrence order). Anything else is left untouched, so
// fusion never changes results, only buffer traffic.

#ifndef SGNN_OPGRAPH_FUSION_H_
#define SGNN_OPGRAPH_FUSION_H_

#include "opgraph/graph.h"

namespace sgnn::opgraph {

/// Rewrites `graph` in place, collapsing SpMM→Scale→Axpy* chains into
/// kFusedSpmmAffine nodes. Returns the number of chains fused.
int FuseSpmmChains(Graph* graph);

}  // namespace sgnn::opgraph

#endif  // SGNN_OPGRAPH_FUSION_H_

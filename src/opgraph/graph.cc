#include "opgraph/graph.h"

namespace sgnn::opgraph {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kZero: return "zero";
    case OpKind::kSpmm: return "spmm";
    case OpKind::kScale: return "scale";
    case OpKind::kAxpy: return "axpy";
    case OpKind::kGemm: return "gemm";
    case OpKind::kElementwise: return "elementwise";
    case OpKind::kFusedSpmmAffine: return "fused_spmm_affine";
  }
  return "unknown";
}

const ValueInfo& Graph::At(ValueId v) const {
  SGNN_CHECK(v >= 0 && v < num_values(), "opgraph: value id out of range");
  return values_[static_cast<size_t>(v)];
}

ValueId Graph::NewValue(int64_t rows, int64_t cols, int def) {
  SGNN_CHECK(rows >= 0 && cols >= 0, "opgraph: negative value shape");
  ValueInfo info;
  info.rows = rows;
  info.cols = cols;
  info.def = def;
  values_.push_back(info);
  return static_cast<ValueId>(values_.size() - 1);
}

ValueId Graph::AddNode(Node node, int64_t rows, int64_t cols) {
  const int def = static_cast<int>(nodes_.size());
  node.out = NewValue(rows, cols, def);
  nodes_.push_back(node);
  return node.out;
}

ValueId Graph::Input(const Matrix* m) {
  SGNN_CHECK(m != nullptr, "opgraph: null input matrix");
  SGNN_CHECK(m->device() == device_,
             "opgraph: input matrix on the wrong device");
  const ValueId v = NewValue(m->rows(), m->cols(), /*def=*/-1);
  values_[static_cast<size_t>(v)].external = m;
  return v;
}

ValueId Graph::Zero(int64_t rows, int64_t cols) {
  Node n;
  n.kind = OpKind::kZero;
  return AddNode(n, rows, cols);
}

ValueId Graph::Spmm(const SpmmOperator* a, ValueId x) {
  SGNN_CHECK(a != nullptr, "opgraph: null spmm operator");
  const ValueInfo& xi = At(x);
  SGNN_CHECK(xi.rows == a->n(), "opgraph: spmm dimension mismatch");
  Node n;
  n.kind = OpKind::kSpmm;
  n.spmm = a;
  n.in0 = x;
  return AddNode(n, a->n(), xi.cols);
}

ValueId Graph::Scale(float alpha, ValueId x) {
  const ValueInfo& xi = At(x);
  Node n;
  n.kind = OpKind::kScale;
  n.alpha = alpha;
  n.in0 = x;
  return AddNode(n, xi.rows, xi.cols);
}

ValueId Graph::Axpy(float alpha, ValueId x, ValueId y) {
  const ValueInfo& xi = At(x);
  const ValueInfo& yi = At(y);
  SGNN_CHECK(xi.rows == yi.rows && xi.cols == yi.cols,
             "opgraph: axpy shape mismatch");
  Node n;
  n.kind = OpKind::kAxpy;
  n.alpha = alpha;
  n.in0 = x;
  n.in1 = y;
  return AddNode(n, yi.rows, yi.cols);
}

ValueId Graph::Gemm(ValueId a, ValueId b) {
  const ValueInfo& ai = At(a);
  const ValueInfo& bi = At(b);
  SGNN_CHECK(ai.cols == bi.rows, "opgraph: gemm inner dimension mismatch");
  Node n;
  n.kind = OpKind::kGemm;
  n.in0 = a;
  n.in1 = b;
  return AddNode(n, ai.rows, bi.cols);
}

ValueId Graph::Elementwise(EwKind kind, ValueId x) {
  const ValueInfo& xi = At(x);
  Node n;
  n.kind = OpKind::kElementwise;
  n.ew = kind;
  n.in0 = x;
  return AddNode(n, xi.rows, xi.cols);
}

void Graph::MarkOutput(ValueId v, Matrix* dest) {
  SGNN_CHECK(dest != nullptr, "opgraph: null output destination");
  SGNN_CHECK(v >= 0 && v < num_values(), "opgraph: value id out of range");
  ValueInfo& info = values_[static_cast<size_t>(v)];
  SGNN_CHECK(info.output == nullptr, "opgraph: value already marked output");
  for (const ValueInfo& other : values_) {
    SGNN_CHECK(other.output != dest,
               "opgraph: destination already bound to another value");
  }
  info.output = dest;
}

std::vector<int> Graph::UseCounts() const {
  std::vector<int> uses(values_.size(), 0);
  for (const Node& n : nodes_) {
    for (const ValueId v : {n.in0, n.in1, n.in2}) {
      if (v != kNoValue) ++uses[static_cast<size_t>(v)];
    }
  }
  return uses;
}

void Graph::ReplaceNodes(std::vector<Node> nodes) {
  // Re-home the `def` indices: values defined by dropped nodes keep def = -2
  // (dead), which the planner skips.
  for (ValueInfo& info : values_) {
    if (info.def >= 0) info.def = -2;
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    const ValueId out = nodes[i].out;
    SGNN_CHECK(out >= 0 && out < num_values(),
               "opgraph: rewritten node with invalid output value");
    values_[static_cast<size_t>(out)].def = static_cast<int>(i);
  }
  nodes_ = std::move(nodes);
}

}  // namespace sgnn::opgraph

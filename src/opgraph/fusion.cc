#include "opgraph/fusion.h"

#include <utility>
#include <vector>

namespace sgnn::opgraph {

namespace {

// True when value `v` has already been defined at node position `pos` (graph
// input, or defining node strictly earlier). Fused nodes are emitted at the
// SpMM's position, so every operand they reference must satisfy this.
bool AvailableAt(const std::vector<ValueInfo>& values, ValueId v, int pos) {
  const int def = values[static_cast<size_t>(v)].def;
  return def < pos;  // inputs have def == -1
}

}  // namespace

int FuseSpmmChains(Graph* graph) {
  const std::vector<Node>& nodes = graph->nodes();
  const std::vector<ValueInfo>& values = graph->values();
  const std::vector<int> uses = graph->UseCounts();

  // Sole consumer per single-use value (chain links must be single-use).
  std::vector<int> sole(values.size(), -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (const ValueId v : {nodes[i].in0, nodes[i].in1, nodes[i].in2}) {
      if (v != kNoValue && uses[static_cast<size_t>(v)] == 1) {
        sole[static_cast<size_t>(v)] = static_cast<int>(i);
      }
    }
  }
  const auto is_output = [&](ValueId v) {
    return values[static_cast<size_t>(v)].output != nullptr;
  };
  const auto single_use_internal = [&](ValueId v) {
    return uses[static_cast<size_t>(v)] == 1 && !is_output(v);
  };

  std::vector<char> absorbed(nodes.size(), 0);
  std::vector<Node> rewritten;
  rewritten.reserve(nodes.size());
  int fused = 0;

  for (size_t i = 0; i < nodes.size(); ++i) {
    if (absorbed[i]) continue;
    const Node& n = nodes[i];
    if (n.kind == OpKind::kSpmm && single_use_internal(n.out)) {
      const int j = sole[static_cast<size_t>(n.out)];
      if (j > static_cast<int>(i) && nodes[static_cast<size_t>(j)].kind ==
                                         OpKind::kScale &&
          nodes[static_cast<size_t>(j)].in0 == n.out) {
        Node f;
        f.kind = OpKind::kFusedSpmmAffine;
        f.spmm = n.spmm;
        f.in0 = n.in0;
        f.ca = nodes[static_cast<size_t>(j)].alpha;
        absorbed[static_cast<size_t>(j)] = 1;
        ValueId chain = nodes[static_cast<size_t>(j)].out;
        int tail = j;
        // Absorb up to two accumulating Axpys (ci then cp — the recurrence
        // order, which is also the executor's replay order).
        for (int slot = 0; slot < 2; ++slot) {
          if (!single_use_internal(chain)) break;
          const int k = sole[static_cast<size_t>(chain)];
          if (k <= tail) break;
          const Node& a = nodes[static_cast<size_t>(k)];
          if (a.kind != OpKind::kAxpy || a.in1 != chain || a.in0 == chain ||
              !AvailableAt(values, a.in0, static_cast<int>(i))) {
            break;
          }
          if (slot == 0) {
            f.ci = a.alpha;
            f.in1 = a.in0;
          } else {
            f.cp = a.alpha;
            f.in2 = a.in0;
          }
          absorbed[static_cast<size_t>(k)] = 1;
          chain = a.out;
          tail = k;
        }
        f.out = chain;
        rewritten.push_back(f);
        ++fused;
        continue;
      }
    }
    rewritten.push_back(n);
  }

  if (fused > 0) graph->ReplaceNodes(std::move(rewritten));
  return fused;
}

}  // namespace sgnn::opgraph

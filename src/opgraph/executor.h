// Plan executor + one-call pipeline.
//
// Replays a planned graph onto the existing tensor kernels (ops::*, which
// dispatch through ParallelFor with flop-weighted chunking), so lazy results
// are bit-identical to the eager code the graph mirrors at any thread count.
//
// Allocation discipline: all output destinations and pool buffers are
// allocated up front and nothing is freed until teardown, so the
// DeviceTracker peak grows by exactly Plan::planned_peak_bytes. A simulated
// accelerator OOM latched during those allocations (capacity overflow or an
// armed fault plan — see runtime/fault_injection.h) does not abort the
// kernels: execution completes with correct results, mirroring eager
// semantics, and Execute returns Status::OutOfMemory so probes and the
// Supervisor can journal the cell instead of crashing.

#ifndef SGNN_OPGRAPH_EXECUTOR_H_
#define SGNN_OPGRAPH_EXECUTOR_H_

#include <cstddef>

#include "opgraph/graph.h"
#include "opgraph/planner.h"

namespace sgnn::opgraph {

/// Executes `graph` under `plan`. Writes every marked output; returns
/// OutOfMemory when the run newly latched the accelerator OOM flag (results
/// are still fully computed — the simulation never fails an allocation).
[[nodiscard]] Status Execute(const Graph& graph, const Plan& plan);

/// Per-run statistics surfaced to benches and journals.
struct PipelineStats {
  int nodes = 0;               ///< schedule length after fusion
  int fused_spmm_chains = 0;   ///< chains collapsed by FuseSpmmChains
  int pool_buffers = 0;        ///< reuse-pool buffer count
  size_t pool_bytes = 0;
  size_t output_bytes = 0;
  size_t planned_peak_bytes = 0;  ///< exact DeviceTracker growth
};

struct PipelineOptions {
  bool fuse = true;  ///< run FuseSpmmChains before planning
};

/// Fuse → plan → execute in one call. `stats` is optional.
[[nodiscard]] Status RunPipeline(Graph* graph, const PipelineOptions& options,
                                 PipelineStats* stats = nullptr);

}  // namespace sgnn::opgraph

#endif  // SGNN_OPGRAPH_EXECUTOR_H_

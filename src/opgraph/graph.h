// Lazy op-graph over the dense/sparse kernels — recording side.
//
// Spectral filters spend their time in short chains of SpMM / Scale / Axpy
// over n x F representations (paper Fig. 2: propagation dominates both time
// and peak memory). Eager execution materializes every K-hop intermediate;
// this layer instead records the computation as a small SSA value DAG that a
// fusion pass (fusion.h) and a liveness-based memory planner (planner.h) can
// rewrite before the executor (executor.h) replays it onto the existing
// tensor kernels.
//
// Layering: opgraph sits between tensor and {sparse, core} in the include
// DAG. It never includes sparse/ — the sparse propagation operator is
// abstracted behind SpmmOperator, and the CSR-backed adapter lives in
// core/lazy.h where both layers are visible.
//
// Determinism contract: a recorded graph executes the *same kernel calls in
// the same order on the same float values* as the eager code it mirrors, so
// lazy results are bit-identical to eager at any thread count (the kernels
// themselves chunk independently of thread count; see docs/DETERMINISM.md).

#ifndef SGNN_OPGRAPH_GRAPH_H_
#define SGNN_OPGRAPH_GRAPH_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/status.h"

namespace sgnn::opgraph {

/// SSA value handle. Values are graph inputs (external matrices) or the
/// single output of one node; ids are dense and topologically ordered by
/// construction.
using ValueId = int32_t;
inline constexpr ValueId kNoValue = -1;

/// Abstract sparse propagation operator (Ã in the paper's recurrences).
/// Keeps opgraph below sparse/ in the include DAG; core/lazy.h adapts
/// sparse::CsrMatrix onto this interface.
class SpmmOperator {
 public:
  virtual ~SpmmOperator() = default;

  /// Dimension of the (square) operator.
  virtual int64_t n() const = 0;

  /// out = A x. `out` is pre-shaped (n, x.cols()) and never aliases x.
  virtual void Apply(const Matrix& x, Matrix* out) const = 0;
};

/// Node taxonomy (docs/OPGRAPH.md). kFusedSpmmAffine only appears after the
/// fusion pass; the builder never records it directly.
enum class OpKind : uint8_t {
  kZero,             ///< out = 0 (fresh accumulator)
  kSpmm,             ///< out = A·in0
  kScale,            ///< out = alpha·in0
  kAxpy,             ///< out = alpha·in0 + in1 (in1 is the accumulate side)
  kGemm,             ///< out = in0·in1 (dense)
  kElementwise,      ///< out = ew(in0)
  kFusedSpmmAffine,  ///< out = ca·(A·in0) + ci·in1 + cp·in2
};

/// Returns a stable lowercase name ("spmm", "fused_spmm_affine", ...).
const char* OpKindName(OpKind kind);

/// Elementwise flavor for kElementwise.
enum class EwKind : uint8_t { kRelu };

/// One recorded operation. At most three inputs; exactly one output value.
struct Node {
  OpKind kind = OpKind::kZero;
  EwKind ew = EwKind::kRelu;
  float alpha = 0.0f;  ///< kScale / kAxpy coefficient
  /// kFusedSpmmAffine coefficients: out = ca·(A·in0) + ci·in1 + cp·in2,
  /// replayed as SpMM, Scale(ca), Axpy(ci, in1), Axpy(cp, in2) — the exact
  /// kernel order of the unfused chain.
  float ca = 0.0f, ci = 0.0f, cp = 0.0f;
  const SpmmOperator* spmm = nullptr;  ///< kSpmm / kFusedSpmmAffine
  ValueId in0 = kNoValue;
  ValueId in1 = kNoValue;
  ValueId in2 = kNoValue;  ///< only used by kFusedSpmmAffine
  ValueId out = kNoValue;
};

/// Per-value metadata.
struct ValueInfo {
  int64_t rows = 0;
  int64_t cols = 0;
  /// Non-null for graph inputs: the externally owned matrix read in place.
  const Matrix* external = nullptr;
  /// Non-null for marked outputs: the caller-owned destination matrix.
  Matrix* output = nullptr;
  /// Index of the defining node, or -1 for inputs.
  int def = -1;

  bool is_input() const { return external != nullptr; }
  size_t bytes() const {
    return static_cast<size_t>(rows) * static_cast<size_t>(cols) *
           sizeof(float);
  }
};

/// Builder + storage for a recorded DAG. All shapes are validated at record
/// time; node order is a topological schedule by construction and is the
/// order the executor replays.
class Graph {
 public:
  explicit Graph(Device device) : device_(device) {}

  Device device() const { return device_; }

  /// Registers an externally owned matrix as a graph input. The matrix must
  /// outlive execution and live on the graph's device.
  ValueId Input(const Matrix* m);

  /// out = 0 with the given shape (accumulator seed; mirrors the eager
  /// zero-filled allocation of y).
  ValueId Zero(int64_t rows, int64_t cols);

  /// out = A·x. The operator must outlive execution.
  ValueId Spmm(const SpmmOperator* a, ValueId x);

  /// out = alpha·x.
  ValueId Scale(float alpha, ValueId x);

  /// out = alpha·x + y. `y` is the accumulate side (the eager in-place
  /// target), which the planner may alias when y dies here.
  ValueId Axpy(float alpha, ValueId x, ValueId y);

  /// out = a·b (dense GEMM).
  ValueId Gemm(ValueId a, ValueId b);

  /// out = ew(x).
  ValueId Elementwise(EwKind kind, ValueId x);

  /// Pins `v` to the caller-owned destination `dest`. Each destination may
  /// be marked once; inputs may be marked (the executor copies them out).
  void MarkOutput(ValueId v, Matrix* dest);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<ValueInfo>& values() const { return values_; }
  int num_values() const { return static_cast<int>(values_.size()); }

  int64_t rows(ValueId v) const { return At(v).rows; }
  int64_t cols(ValueId v) const { return At(v).cols; }

  /// Number of consuming node references per value (marked outputs are not
  /// counted; fusion checks ValueInfo::output separately).
  std::vector<int> UseCounts() const;

  /// Replaces the node list (fusion rewrite). The new list must define every
  /// value that is still referenced; validated by the planner.
  void ReplaceNodes(std::vector<Node> nodes);

 private:
  const ValueInfo& At(ValueId v) const;
  ValueId NewValue(int64_t rows, int64_t cols, int def);
  ValueId AddNode(Node node, int64_t rows, int64_t cols);

  Device device_;
  std::vector<Node> nodes_;
  std::vector<ValueInfo> values_;
};

}  // namespace sgnn::opgraph

#endif  // SGNN_OPGRAPH_GRAPH_H_

#include "quant/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace sgnn::quant {

namespace {

/// Elements per chunk for O(1)-per-element passes (same target as
/// ops.cc's kElementGrain).
constexpr int64_t kElementGrain = int64_t{1} << 15;

/// Largest finite magnitude representable in binary16.
constexpr float kF16Max = 65504.0f;

int64_t RowGrain(int64_t cols) {
  return std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, cols));
}

int8_t QuantizeValue(float v, float scale) {
  if (scale == 0.0f) return 0;
  const float q = std::nearbyint(v / scale);
  return static_cast<int8_t>(std::clamp(q, -127.0f, 127.0f));
}

}  // namespace

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFp32: return "fp32";
    case Precision::kFp16: return "fp16";
    case Precision::kInt8: return "int8";
  }
  return "?";
}

const char* CalibPolicyName(CalibPolicy p) {
  switch (p) {
    case CalibPolicy::kAbsMax: return "absmax";
    case CalibPolicy::kPercentile: return "percentile";
  }
  return "?";
}

size_t ElemSize(Precision p) {
  switch (p) {
    case Precision::kFp32: return 4;
    case Precision::kFp16: return 2;
    case Precision::kInt8: return 1;
  }
  return 4;
}

uint16_t F32ToF16(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint32_t sign = (x >> 16) & 0x8000u;
  const uint32_t exp32 = (x >> 23) & 0xFFu;
  uint32_t mant = x & 0x7FFFFFu;
  if (exp32 == 0xFFu) {  // inf / NaN (keep NaN-ness with a quiet payload)
    return static_cast<uint16_t>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  }
  const int32_t exp = static_cast<int32_t>(exp32) - 127 + 15;
  if (exp >= 31) return static_cast<uint16_t>(sign | 0x7C00u);  // overflow
  if (exp <= 0) {
    if (exp < -10) return static_cast<uint16_t>(sign);  // underflows to 0
    // Subnormal half: shift the (implicit-1) mantissa into place with
    // round-to-nearest-even on the dropped bits.
    mant |= 0x800000u;
    const uint32_t shift = static_cast<uint32_t>(14 - exp);
    uint32_t half = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1u);
    if (rem > halfway || (rem == halfway && (half & 1u))) ++half;
    return static_cast<uint16_t>(sign | half);
  }
  uint32_t half = (static_cast<uint32_t>(exp) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1FFFu;
  // Round to nearest even; a mantissa carry correctly rolls into the
  // exponent (and on to infinity at the top).
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<uint16_t>(sign | half);
}

float F16ToF32(uint16_t h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  const uint32_t mant = h & 0x3FFu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;
    } else {
      // Subnormal half: normalize into a float exponent.
      uint32_t m = mant;
      uint32_t e = 0;
      while (!(m & 0x400u)) {
        m <<= 1;
        ++e;
      }
      bits = sign | ((113u - e) << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exp == 31) {
    bits = sign | 0x7F800000u | (mant << 13);
  } else {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

QuantizedMatrix::QuantizedMatrix(Precision precision, int64_t rows,
                                 int64_t cols, Device device)
    : precision_(precision), rows_(rows), cols_(cols), device_(device) {
  SGNN_CHECK(rows >= 0 && cols >= 0, "QuantizedMatrix: negative shape");
  SGNN_CHECK(precision != Precision::kFp32,
             "QuantizedMatrix: fp32 payloads are plain Matrix");
  data_.assign(static_cast<size_t>(rows * cols) * ElemSize(precision), 0);
  Register();
}

QuantizedMatrix::QuantizedMatrix(const QuantizedMatrix& other)
    : precision_(other.precision_),
      rows_(other.rows_),
      cols_(other.cols_),
      device_(other.device_),
      data_(other.data_),
      scales_(other.scales_) {
  Register();
}

QuantizedMatrix& QuantizedMatrix::operator=(const QuantizedMatrix& other) {
  if (this == &other) return *this;
  Unregister();
  precision_ = other.precision_;
  rows_ = other.rows_;
  cols_ = other.cols_;
  device_ = other.device_;
  data_ = other.data_;
  scales_ = other.scales_;
  Register();
  return *this;
}

QuantizedMatrix::QuantizedMatrix(QuantizedMatrix&& other) noexcept
    : precision_(other.precision_),
      rows_(other.rows_),
      cols_(other.cols_),
      device_(other.device_),
      data_(std::move(other.data_)),
      scales_(std::move(other.scales_)) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_.clear();
  other.scales_.clear();
}

QuantizedMatrix& QuantizedMatrix::operator=(QuantizedMatrix&& other) noexcept {
  if (this == &other) return *this;
  Unregister();
  precision_ = other.precision_;
  rows_ = other.rows_;
  cols_ = other.cols_;
  device_ = other.device_;
  data_ = std::move(other.data_);
  scales_ = std::move(other.scales_);
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_.clear();
  other.scales_.clear();
  return *this;
}

QuantizedMatrix::~QuantizedMatrix() { Unregister(); }

void QuantizedMatrix::MoveToDevice(Device device) {
  if (device == device_) return;
  Unregister();
  device_ = device;
  Register();
}

// Only the payload registers with the tracker: scales() is a mutable
// handle (Quantize and ReadQuantized attach scales after construction), so
// including it in the tracked size would let a post-registration resize
// desync alloc/free pairs. Payload bytes dominate anyway.
void QuantizedMatrix::Register() const {
  if (!data_.empty()) DeviceTracker::Global().OnAlloc(device_, data_.size());
}

void QuantizedMatrix::Unregister() const {
  if (!data_.empty()) DeviceTracker::Global().OnFree(device_, data_.size());
}

std::vector<float> CalibrateScales(const Matrix& m, const CalibConfig& calib) {
  const int64_t rows = m.rows(), cols = m.cols();
  std::vector<float> scales(static_cast<size_t>(cols), 0.0f);
  if (rows == 0 || cols == 0) return scales;

  // Seeded row sample without replacement (partial Fisher-Yates). The same
  // (seed, sample_rows, shape) always yields the same rows, which is what
  // makes calibration bit-deterministic.
  std::vector<int64_t> sample;
  const bool all = calib.sample_rows <= 0 || calib.sample_rows >= rows;
  if (all) {
    sample.resize(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) sample[static_cast<size_t>(r)] = r;
  } else {
    std::vector<int64_t> pool(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) pool[static_cast<size_t>(r)] = r;
    Rng rng(calib.seed);
    sample.reserve(static_cast<size_t>(calib.sample_rows));
    for (int64_t i = 0; i < calib.sample_rows; ++i) {
      const uint64_t j =
          i + rng.UniformInt(static_cast<uint64_t>(rows - i));
      std::swap(pool[static_cast<size_t>(i)], pool[j]);
      sample.push_back(pool[static_cast<size_t>(i)]);
    }
  }

  const bool percentile = calib.policy == CalibPolicy::kPercentile;
  const double p = std::clamp(calib.percentile, 1e-6, 100.0);
  // Column-parallel: each chunk owns a column range, so scale writes never
  // race and the result is identical at any thread count.
  parallel::ParallelFor(0, cols, RowGrain(static_cast<int64_t>(sample.size())),
                        [&](int64_t lo, int64_t hi) {
    std::vector<float> mags;
    for (int64_t c = lo; c < hi; ++c) {
      float absmax = 0.0f;
      mags.clear();
      mags.reserve(sample.size());
      for (const int64_t r : sample) {
        const float mag = std::fabs(m.at(r, c));
        absmax = std::max(absmax, mag);
        if (percentile) mags.push_back(mag);
      }
      float clip = absmax;
      if (percentile && !mags.empty()) {
        const auto idx = static_cast<size_t>(
            std::llround((p / 100.0) * static_cast<double>(mags.size() - 1)));
        std::nth_element(mags.begin(), mags.begin() + idx, mags.end());
        clip = mags[idx];
        // An all-but-outlier-zero channel would get a zero step and erase
        // every value; fall back to the exact range instead.
        if (clip == 0.0f) clip = absmax;
      }
      scales[static_cast<size_t>(c)] = clip / 127.0f;
    }
  });
  return scales;
}

Result<QuantizedMatrix> Quantize(const Matrix& m, Precision precision,
                                 const CalibConfig& calib) {
  if (precision == Precision::kFp32) {
    return Status::InvalidArgument("Quantize: fp32 is not a quantized target");
  }
  QuantizedMatrix q(precision, m.rows(), m.cols(), m.device());
  const int64_t rows = m.rows(), cols = m.cols();
  if (precision == Precision::kFp16) {
    uint16_t* out = q.f16();
    parallel::ParallelFor(0, rows, RowGrain(cols), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        const float* src = m.row(r);
        uint16_t* dst = out + r * cols;
        for (int64_t c = 0; c < cols; ++c) dst[c] = F32ToF16(src[c]);
      }
    });
    return q;
  }
  q.scales() = CalibrateScales(m, calib);
  const float* scales = q.scales().data();
  int8_t* out = q.i8();
  parallel::ParallelFor(0, rows, RowGrain(cols), [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* src = m.row(r);
      int8_t* dst = out + r * cols;
      for (int64_t c = 0; c < cols; ++c) {
        dst[c] = QuantizeValue(src[c], scales[c]);
      }
    }
  });
  return q;
}

void Dequantize(const QuantizedMatrix& q, Matrix* out) {
  SGNN_CHECK(out->rows() == q.rows() && out->cols() == q.cols(),
             "Dequantize: output shape mismatch");
  const int64_t rows = q.rows(), cols = q.cols();
  if (q.precision() == Precision::kFp16) {
    parallel::ParallelFor(0, rows, RowGrain(cols), [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        const uint16_t* src = q.f16row(r);
        float* dst = out->row(r);
        for (int64_t c = 0; c < cols; ++c) dst[c] = F16ToF32(src[c]);
      }
    });
    return;
  }
  SGNN_CHECK(q.precision() == Precision::kInt8, "Dequantize: fp32 payload");
  SGNN_CHECK(static_cast<int64_t>(q.scales().size()) == cols,
             "Dequantize: int8 payload without owned scales");
  const float* scales = q.scales().data();
  parallel::ParallelFor(0, rows, RowGrain(cols), [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int8_t* src = q.i8row(r);
      float* dst = out->row(r);
      for (int64_t c = 0; c < cols; ++c) {
        dst[c] = scales[c] * static_cast<float>(src[c]);
      }
    }
  });
}

void AppendQuantized(const QuantizedMatrix& q, serialize::Writer* w) {
  w->PutU8(static_cast<uint8_t>(q.precision()));
  w->PutI64(q.rows());
  w->PutI64(q.cols());
  w->PutU32(static_cast<uint32_t>(q.scales().size()));
  for (const float s : q.scales()) w->PutF32(s);
  if (q.precision() == Precision::kFp16) {
    // fp16 payloads cross machines as explicit little-endian u16.
    for (int64_t i = 0; i < q.size(); ++i) w->PutU16(q.f16()[i]);
  } else {
    w->PutBytes(q.i8(), static_cast<size_t>(q.size()));
  }
}

Status ReadQuantized(serialize::Reader* r, Device device, QuantizedMatrix* out,
                     int64_t max_elems) {
  uint8_t prec_raw = 0;
  int64_t rows = 0, cols = 0;
  uint32_t num_scales = 0;
  SGNN_RETURN_IF_ERROR(r->U8(&prec_raw));
  SGNN_RETURN_IF_ERROR(r->I64(&rows));
  SGNN_RETURN_IF_ERROR(r->I64(&cols));
  if (prec_raw != static_cast<uint8_t>(Precision::kFp16) &&
      prec_raw != static_cast<uint8_t>(Precision::kInt8)) {
    return Status::IOError("quantized payload: unknown precision tag " +
                           std::to_string(prec_raw));
  }
  const auto precision = static_cast<Precision>(prec_raw);
  if (rows < 0 || cols < 0 || (cols > 0 && rows > max_elems / cols)) {
    return Status::IOError("quantized payload: implausible shape " +
                           std::to_string(rows) + "x" + std::to_string(cols));
  }
  SGNN_RETURN_IF_ERROR(r->U32(&num_scales));
  if (precision == Precision::kFp16 && num_scales != 0) {
    return Status::IOError("quantized payload: fp16 carries no scales");
  }
  if (precision == Precision::kInt8 && num_scales != 0 &&
      num_scales != static_cast<uint64_t>(cols)) {
    return Status::IOError("quantized payload: scale count " +
                           std::to_string(num_scales) + " != cols " +
                           std::to_string(cols));
  }
  QuantizedMatrix q(precision, rows, cols, device);
  q.scales().resize(num_scales);
  for (uint32_t i = 0; i < num_scales; ++i) {
    SGNN_RETURN_IF_ERROR(r->F32(&q.scales()[i]));
  }
  if (precision == Precision::kFp16) {
    for (int64_t i = 0; i < q.size(); ++i) {
      SGNN_RETURN_IF_ERROR(r->U16(&q.f16()[i]));
    }
  } else {
    SGNN_RETURN_IF_ERROR(
        r->Raw(q.i8(), static_cast<size_t>(q.size())));
  }
  *out = std::move(q);
  return Status::OK();
}

}  // namespace sgnn::quant

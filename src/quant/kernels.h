// Quantized-compute kernels for the serving fast path.
//
// These are the int8/fp16 counterparts of the two fp32 kernels a decoupled
// MB query runs — CombineTerms over the gathered bundle and the φ1
// ForwardInference GEMMs — built under the same determinism contract as
// tensor/ops.cc: every kernel is row-partitioned with ParallelFor, each
// output row depends only on its own inputs, and per-element accumulation
// order is fixed, so results are bit-identical at any SGNN_NUM_THREADS
// (asserted in tests/quant_test.cc).
//
// Int8 GEMM follows the standard dynamic-activation scheme: weights are
// per-output-channel symmetric int8 (offline, calibrated), activations are
// quantized per row on the fly (absmax of the live row), products
// accumulate in int32, and the output rescales once per element by
// row_scale * col_scale before the fp32 bias add. Accumulating a k-long
// dot of products bounded by 127*127 stays far inside int32 for any
// realistic feature width (k < 2^16 guaranteed by checkpoint sanity caps).

#ifndef SGNN_QUANT_KERNELS_H_
#define SGNN_QUANT_KERNELS_H_

#include <cstdint>
#include <vector>

#include "core/filter.h"
#include "nn/mlp.h"
#include "quant/quantize.h"
#include "tensor/matrix.h"
#include "tensor/status.h"

namespace sgnn::quant {

/// out = x · Wq (+ nothing): int8 weights with owned per-column scales,
/// per-row dynamic activation quantization, int32 accumulators. `out` must
/// be pre-shaped (x.rows, wq.cols).
void GemmInt8(const Matrix& x, const QuantizedMatrix& wq, Matrix* out);

/// out = x · Wh for fp16 weights (dequantize-on-read, fp32 accumulate).
void GemmF16(const Matrix& x, const QuantizedMatrix& wq, Matrix* out);

/// One quantized linear layer: y = GemmInt8/F16(x, w) + b. Biases stay
/// fp32 — they are O(out_dim) bytes and their error otherwise lands
/// directly on the logits.
struct QuantizedLinear {
  QuantizedMatrix w;  ///< (in_dim x out_dim), owned scales when int8
  Matrix b;           ///< (1 x out_dim) fp32

  void Forward(const Matrix& x, Matrix* out) const;
};

/// Quantized mirror of nn::Mlp::ForwardInference: ReLU between layers, no
/// dropout, const. Lives here (not in nn) so the nn layer stays ignorant
/// of precision — the serve engine picks fp or quantized φ1 per model.
class QuantizedMlp {
 public:
  QuantizedMlp() = default;

  /// Quantizes every layer of `mlp` at `precision` (weights always use
  /// absmax calibration — their exact range is known, clipping only helps
  /// long-tailed activation-like data). InvalidArgument for kFp32.
  static Result<QuantizedMlp> FromMlp(const nn::Mlp& mlp, Precision precision);

  /// Restore path: append an already-quantized layer (checkpoint load).
  void AddLayer(QuantizedMatrix w, Matrix b);

  bool empty() const { return layers_.empty(); }
  const std::vector<QuantizedLinear>& layers() const { return layers_; }
  Precision precision() const {
    return layers_.empty() ? Precision::kFp32 : layers_[0].w.precision();
  }
  /// Payload + scale + bias bytes across all layers (model-size reporting).
  size_t bytes() const;

  /// out must be pre-shaped (x.rows, last out_dim). Identity when empty,
  /// mirroring nn::Mlp.
  void ForwardInference(const Matrix& x, Matrix* out) const;

 private:
  std::vector<QuantizedLinear> layers_;
};

/// Fused quantized CombineTerms over staged bundles. `staged` holds `b`
/// bundles back to back, each a (num_terms x f) payload in bundle-row-major
/// order (term k of bundle i starts at (i*num_terms + k) * f). `eff` is the
/// (num_terms x f) fp32 effective-weight matrix — probed combine weight
/// times per-term channel scale (int8) or the combine weight alone (fp16) —
/// so h[i][c] = sum_k eff[k][c] * staged_value. `h` must be pre-shaped
/// (b x f). Bundle-parallel; bit-identical at any thread count.
void CombineStagedInt8(const int8_t* staged, int64_t b, const Matrix& eff,
                       Matrix* h);
void CombineStagedF16(const uint16_t* staged, int64_t b, const Matrix& eff,
                      Matrix* h);

/// Extracts the per-(term, channel) combine weights of an MB filter by
/// probing CombineTerms with unit bundles: for every Table 1 MB filter the
/// combine step is linear and channel-diagonal (y[., c] depends only on
/// term channel c), so feeding e_k (all-ones in term k, zeros elsewhere)
/// reads out weight row k exactly. A seeded random probe then validates the
/// diagonal model against the filter's own CombineTerms; on mismatch
/// `*diagonal` is false and cw is left valid-but-unusable — callers must
/// fall back to dequantize-and-CombineTerms (the engine does, so a future
/// non-diagonal filter degrades gracefully instead of serving garbage).
/// `num_terms`/`f` describe the term bundles; the filter must already be
/// precomputed. cw is (num_terms x f) on the host.
[[nodiscard]] Status ProbeCombineWeights(filters::SpectralFilter* filter,
                                         int64_t num_terms, int64_t f,
                                         Matrix* cw, bool* diagonal);

}  // namespace sgnn::quant

#endif  // SGNN_QUANT_KERNELS_H_

#include "quant/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/parallel.h"

namespace sgnn::quant {

namespace {

/// Same ~64k-flops-per-chunk target as tensor/ops.cc.
int64_t RowGrain(int64_t row_flops) {
  return parallel::GrainForFlops(row_flops, int64_t{1} << 16);
}

}  // namespace

void GemmInt8(const Matrix& x, const QuantizedMatrix& wq, Matrix* out) {
  SGNN_CHECK(wq.precision() == Precision::kInt8, "GemmInt8: not int8");
  SGNN_CHECK(x.cols() == wq.rows(), "GemmInt8: inner dimensions mismatch");
  SGNN_CHECK(out->rows() == x.rows() && out->cols() == wq.cols(),
             "GemmInt8: output shape mismatch");
  SGNN_CHECK(static_cast<int64_t>(wq.scales().size()) == wq.cols(),
             "GemmInt8: weights need owned per-column scales");
  const int64_t n = x.rows(), k = x.cols(), m = wq.cols();
  const float* wscale = wq.scales().data();
  const int8_t* w = wq.i8();
  // Row-partitioned over `out`. Activation quantization is per *row*, so a
  // row's result is independent of which batch (or chunk) it arrived in —
  // this is what makes batched and singleton serving bit-identical.
  parallel::ParallelFor(0, n, RowGrain(k * m), [&](int64_t lo, int64_t hi) {
    std::vector<int8_t> qrow(static_cast<size_t>(k));
    std::vector<int32_t> acc(static_cast<size_t>(m));
    for (int64_t i = lo; i < hi; ++i) {
      const float* xrow = x.row(i);
      float absmax = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        absmax = std::max(absmax, std::fabs(xrow[kk]));
      }
      const float ascale = absmax / 127.0f;
      const float inv = ascale > 0.0f ? 1.0f / ascale : 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float q = std::nearbyint(xrow[kk] * inv);
        qrow[static_cast<size_t>(kk)] =
            static_cast<int8_t>(std::clamp(q, -127.0f, 127.0f));
      }
      std::fill(acc.begin(), acc.end(), 0);
      // i-k-j order: streams through w and acc contiguously; integer
      // accumulation is associative, so order only matters for speed.
      for (int64_t kk = 0; kk < k; ++kk) {
        const int32_t av = qrow[static_cast<size_t>(kk)];
        if (av == 0) continue;
        const int8_t* wrow = w + kk * m;
        for (int64_t j = 0; j < m; ++j) {
          acc[static_cast<size_t>(j)] += av * static_cast<int32_t>(wrow[j]);
        }
      }
      float* orow = out->row(i);
      for (int64_t j = 0; j < m; ++j) {
        orow[j] = static_cast<float>(acc[static_cast<size_t>(j)]) * ascale *
                  wscale[j];
      }
    }
  });
}

void GemmF16(const Matrix& x, const QuantizedMatrix& wq, Matrix* out) {
  SGNN_CHECK(wq.precision() == Precision::kFp16, "GemmF16: not fp16");
  SGNN_CHECK(x.cols() == wq.rows(), "GemmF16: inner dimensions mismatch");
  SGNN_CHECK(out->rows() == x.rows() && out->cols() == wq.cols(),
             "GemmF16: output shape mismatch");
  const int64_t n = x.rows(), k = x.cols(), m = wq.cols();
  const uint16_t* w = wq.f16();
  out->Fill(0.0f);
  // Same i-k-j ascending-k accumulation as ops::Gemm, so the parallel
  // result is bit-identical to the serial one.
  parallel::ParallelFor(0, n, RowGrain(k * m), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* xrow = x.row(i);
      float* orow = out->row(i);
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = xrow[kk];
        if (av == 0.0f) continue;
        const uint16_t* wrow = w + kk * m;
        for (int64_t j = 0; j < m; ++j) orow[j] += av * F16ToF32(wrow[j]);
      }
    }
  });
}

void QuantizedLinear::Forward(const Matrix& x, Matrix* out) const {
  if (w.precision() == Precision::kInt8) {
    GemmInt8(x, w, out);
  } else {
    GemmF16(x, w, out);
  }
  ops::AddRowBroadcast(b, out);
}

Result<QuantizedMlp> QuantizedMlp::FromMlp(const nn::Mlp& mlp,
                                           Precision precision) {
  if (precision == Precision::kFp32) {
    return Status::InvalidArgument("QuantizedMlp: fp32 is not quantized");
  }
  QuantizedMlp q;
  CalibConfig absmax;  // defaults: absmax over every row
  for (const nn::Linear& layer : mlp.layers()) {
    SGNN_ASSIGN_OR_RETURN(QuantizedMatrix w,
                          Quantize(layer.weight().value(), precision, absmax));
    q.AddLayer(std::move(w), layer.bias().value());
  }
  return q;
}

void QuantizedMlp::AddLayer(QuantizedMatrix w, Matrix b) {
  layers_.push_back(QuantizedLinear{std::move(w), std::move(b)});
}

size_t QuantizedMlp::bytes() const {
  size_t total = 0;
  for (const QuantizedLinear& l : layers_) total += l.w.bytes() + l.b.bytes();
  return total;
}

void QuantizedMlp::ForwardInference(const Matrix& x, Matrix* out) const {
  if (layers_.empty()) {
    SGNN_CHECK(out->rows() == x.rows() && out->cols() == x.cols(),
               "QuantizedMlp: identity output shape mismatch");
    ops::Copy(x, out);
    return;
  }
  Matrix cur;
  const Matrix* in = &x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    Matrix* dst = last ? out : &cur;
    Matrix y(in->rows(), layers_[i].w.cols(), x.device());
    layers_[i].Forward(*in, &y);
    if (!last) ops::ReluInPlace(&y);
    *dst = std::move(y);
    in = dst;
  }
}

void CombineStagedInt8(const int8_t* staged, int64_t b, const Matrix& eff,
                       Matrix* h) {
  const int64_t t = eff.rows(), f = eff.cols();
  SGNN_CHECK(h->rows() == b && h->cols() == f,
             "CombineStagedInt8: output shape mismatch");
  // Bundle-partitioned: h row i reads only bundle i, ascending k per
  // element — bit-identical at any thread count and any batch grouping.
  parallel::ParallelFor(0, b, RowGrain(t * f), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const int8_t* bundle = staged + i * t * f;
      float* hrow = h->row(i);
      std::fill(hrow, hrow + f, 0.0f);
      for (int64_t k = 0; k < t; ++k) {
        const float* erow = eff.row(k);
        const int8_t* trow = bundle + k * f;
        for (int64_t c = 0; c < f; ++c) {
          hrow[c] += erow[c] * static_cast<float>(trow[c]);
        }
      }
    }
  });
}

void CombineStagedF16(const uint16_t* staged, int64_t b, const Matrix& eff,
                      Matrix* h) {
  const int64_t t = eff.rows(), f = eff.cols();
  SGNN_CHECK(h->rows() == b && h->cols() == f,
             "CombineStagedF16: output shape mismatch");
  parallel::ParallelFor(0, b, RowGrain(t * f), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const uint16_t* bundle = staged + i * t * f;
      float* hrow = h->row(i);
      std::fill(hrow, hrow + f, 0.0f);
      for (int64_t k = 0; k < t; ++k) {
        const float* erow = eff.row(k);
        const uint16_t* trow = bundle + k * f;
        for (int64_t c = 0; c < f; ++c) {
          hrow[c] += erow[c] * F16ToF32(trow[c]);
        }
      }
    }
  });
}

Status ProbeCombineWeights(filters::SpectralFilter* filter, int64_t num_terms,
                           int64_t f, Matrix* cw, bool* diagonal) {
  *diagonal = true;
  *cw = Matrix(num_terms, f, Device::kHost);
  std::vector<Matrix> probes;
  probes.reserve(static_cast<size_t>(num_terms));
  std::vector<const Matrix*> ptrs;
  ptrs.reserve(static_cast<size_t>(num_terms));
  for (int64_t k = 0; k < num_terms; ++k) {
    probes.emplace_back(1, f, Device::kAccel);
    ptrs.push_back(&probes.back());
  }
  Matrix y(1, f, Device::kAccel);

  // A linear combine maps the zero bundle to zero; anything else (an
  // affine offset, stateful combine) already breaks the model.
  filter->CombineTerms(ptrs, &y, /*cache=*/false);
  for (int64_t c = 0; c < f; ++c) {
    if (y.at(0, c) != 0.0f) {
      *diagonal = false;
      return Status::OK();
    }
  }

  // Unit probes: all-ones in term k reads out weight row k under the
  // linear channel-diagonal model.
  for (int64_t k = 0; k < num_terms; ++k) {
    probes[static_cast<size_t>(k)].Fill(1.0f);
    filter->CombineTerms(ptrs, &y, /*cache=*/false);
    std::memcpy(cw->row(k), y.row(0), static_cast<size_t>(f) * sizeof(float));
    probes[static_cast<size_t>(k)].Fill(0.0f);
  }

  // Seeded random probe: reject the diagonal model unless it reproduces
  // the filter's own combine to near machine precision.
  Rng rng(0xC0FFEEu);
  for (int64_t k = 0; k < num_terms; ++k) {
    probes[static_cast<size_t>(k)].FillNormal(&rng);
  }
  filter->CombineTerms(ptrs, &y, /*cache=*/false);
  for (int64_t c = 0; c < f; ++c) {
    double expect = 0.0;
    for (int64_t k = 0; k < num_terms; ++k) {
      expect += static_cast<double>(cw->at(k, c)) *
                static_cast<double>(probes[static_cast<size_t>(k)].at(0, c));
    }
    const double got = y.at(0, c);
    const double tol = 1e-4 * std::max(1.0, std::fabs(expect));
    if (std::fabs(got - expect) > tol) {
      *diagonal = false;
      return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace sgnn::quant

// Post-training quantization codecs for the frozen MB serving artifact.
//
// The paper's decoupled (MB) filters freeze two things at export time: the
// φ1 MLP weights and the precomputed per-hop term matrices. Both are pure
// read-only tensors at serving time, which makes them ideal post-training
// quantization targets (no fake-quant retraining, no gradient plumbing):
//
//   * int8  — per-channel symmetric: one fp32 scale per column, values
//     stored as round-to-nearest int8 in [-127, 127] (the -128 slot is
//     unused so negation is closed and the codec is symmetric). Column
//     granularity matches how both consumers index: GEMM columns are output
//     channels, term columns are feature channels.
//   * fp16  — IEEE 754 binary16 bit patterns (round-to-nearest-even), no
//     scales. Halves the footprint at ~1e-3 relative error.
//
// Calibration picks the int8 clipping range per channel from a held-out
// sample of rows (the "query sample"): absmax uses the exact per-channel
// max |v| (no clipping, coarsest step), percentile clips to the p-th
// percentile of |v| so a single outlier row cannot blow up the step size
// for every other value in the channel. All sampling is seeded (tensor
// Rng), so calibration is deterministic — quantizing the same checkpoint
// twice yields bit-identical payloads (asserted in tests/quant_test.cc).
//
// QuantizedMatrix mirrors tensor::Matrix's device accounting: payload bytes
// register with the global DeviceTracker, so cache budgets and bench memory
// reports see quantized bundles at their true (reduced) size.

#ifndef SGNN_QUANT_QUANTIZE_H_
#define SGNN_QUANT_QUANTIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/device.h"
#include "tensor/matrix.h"
#include "tensor/serialize.h"
#include "tensor/status.h"

namespace sgnn::quant {

/// Storage precision of a quantized tensor. kFp32 is the identity tag used
/// by callers that sweep precisions; Quantize() rejects it (nothing to do).
enum class Precision : uint8_t {
  kFp32 = 0,
  kFp16 = 1,
  kInt8 = 2,
};

/// How the int8 clipping range is chosen per channel. Ignored for fp16.
enum class CalibPolicy : uint8_t {
  kAbsMax = 0,      ///< scale = max|v| / 127 over the calibration sample
  kPercentile = 1,  ///< scale = p-th percentile of |v| / 127 (clips outliers)
};

/// Calibration knobs (documented in docs/QUANTIZATION.md).
struct CalibConfig {
  CalibPolicy policy = CalibPolicy::kAbsMax;
  /// Percentile in (0, 100] for kPercentile. 100 degenerates to absmax.
  double percentile = 99.5;
  /// Rows sampled (without replacement, seeded) for calibration statistics.
  /// 0 or >= rows means every row participates.
  int64_t sample_rows = 0;
  /// Seed for the row sample; fixed seed => bit-identical calibration.
  uint64_t seed = 0x51u;
};

const char* PrecisionName(Precision p);
const char* CalibPolicyName(CalibPolicy p);

/// Bytes per stored element (1 for int8, 2 for fp16, 4 for fp32).
size_t ElemSize(Precision p);

/// IEEE binary16 conversions. F32ToF16 rounds to nearest-even, overflows to
/// +-inf and preserves NaN; F16ToF32 is exact (every half is a float).
uint16_t F32ToF16(float f);
float F16ToF32(uint16_t h);

/// Dense row-major matrix of quantized values with DeviceTracker-visible
/// byte accounting. For kInt8 the payload is int8 and `scales()` holds one
/// fp32 multiplier per column — unless the scales were deliberately kept
/// external (per-node cache bundles share the per-term scales owned by the
/// model, so each bundle stores payload bytes only). For kFp16 the payload
/// is uint16 bit patterns and scales are always empty.
class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  /// Zero-filled rows x cols payload at `precision` on `device`.
  QuantizedMatrix(Precision precision, int64_t rows, int64_t cols,
                  Device device = Device::kHost);

  QuantizedMatrix(const QuantizedMatrix& other);
  QuantizedMatrix& operator=(const QuantizedMatrix& other);
  QuantizedMatrix(QuantizedMatrix&& other) noexcept;
  QuantizedMatrix& operator=(QuantizedMatrix&& other) noexcept;
  ~QuantizedMatrix();

  Precision precision() const { return precision_; }
  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  Device device() const { return device_; }

  /// Tracked footprint: payload bytes plus owned scale bytes.
  size_t bytes() const { return data_.size() + scales_.size() * sizeof(float); }

  /// Payload accessors. i8* is valid only at kInt8, f16* only at kFp16.
  int8_t* i8() { return reinterpret_cast<int8_t*>(data_.data()); }
  const int8_t* i8() const {
    return reinterpret_cast<const int8_t*>(data_.data());
  }
  uint16_t* f16() { return reinterpret_cast<uint16_t*>(data_.data()); }
  const uint16_t* f16() const {
    return reinterpret_cast<const uint16_t*>(data_.data());
  }
  const int8_t* i8row(int64_t r) const { return i8() + r * cols_; }
  const uint16_t* f16row(int64_t r) const { return f16() + r * cols_; }

  /// Per-column scales (size cols for owned-scale int8; empty for fp16 and
  /// for external-scale int8 payloads such as cache bundles).
  std::vector<float>& scales() { return scales_; }
  const std::vector<float>& scales() const { return scales_; }

  /// Re-tags onto another device (simulated transfer, tracker-visible).
  void MoveToDevice(Device device);

 private:
  void Register() const;
  void Unregister() const;

  Precision precision_ = Precision::kFp32;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  Device device_ = Device::kHost;
  std::vector<uint8_t> data_;   ///< rows*cols elements of ElemSize bytes
  std::vector<float> scales_;
};

/// Per-channel int8 scales for `m` under `calib`: scales[c] = clip_c / 127
/// where clip_c is the absmax or percentile statistic of |m[:, c]| over the
/// (seeded) row sample. A percentile statistic of exactly 0 falls back to
/// the channel absmax so nonzero values never collapse to a zero scale.
std::vector<float> CalibrateScales(const Matrix& m, const CalibConfig& calib);

/// Quantizes `m` at `precision` (kInt8 uses `calib`; kFp16 ignores it).
/// The result lives on m.device() and owns its scales. InvalidArgument for
/// kFp32 (nothing to quantize).
Result<QuantizedMatrix> Quantize(const Matrix& m, Precision precision,
                                 const CalibConfig& calib);

/// Expands `q` back to fp32. `out` must be pre-shaped (q.rows, q.cols); the
/// int8 path requires owned scales. Row-parallel and bit-identical at any
/// thread count (each output element depends on exactly one input element).
void Dequantize(const QuantizedMatrix& q, Matrix* out);

/// Appends `q` as (u8 precision, i64 rows, i64 cols, u32 scale count,
/// f32 scales, payload bytes — int8 raw / fp16 as little-endian u16).
void AppendQuantized(const QuantizedMatrix& q, serialize::Writer* w);

/// Reads a QuantizedMatrix written by AppendQuantized onto `device`.
/// Rejects negative / implausibly large shapes (> max_elems) and malformed
/// precision or scale counts with IOError, mirroring serialize::ReadMatrix.
[[nodiscard]] Status ReadQuantized(serialize::Reader* r, Device device,
                                   QuantizedMatrix* out,
                                   int64_t max_elems = int64_t{1} << 32);

}  // namespace sgnn::quant

#endif  // SGNN_QUANT_QUANTIZE_H_

// Stream codec for CSR matrices, shared by the standalone SaveCsr/LoadCsr
// snapshot format (sparse/adjacency.h) and the serving checkpoint, which
// can embed the normalized propagation matrix so a served model can refresh
// its precomputed terms after a graph update. All multi-byte fields go
// through tensor/serialize.h and are therefore little-endian on every host.

#ifndef SGNN_SPARSE_SERIALIZE_H_
#define SGNN_SPARSE_SERIALIZE_H_

#include "sparse/csr.h"
#include "tensor/serialize.h"
#include "tensor/status.h"

namespace sgnn::sparse {

/// Appends a CSR matrix as (i64 n, i64 nnz, indptr, indices, values).
void AppendCsr(const CsrMatrix& m, serialize::Writer* w);

/// Reads a CSR matrix written by AppendCsr onto `device`. Validates the
/// header (non-negative n/nnz, indptr consistency) and returns IOError for
/// corrupt or truncated input.
[[nodiscard]] Status ReadCsr(serialize::Reader* r, Device device,
                             CsrMatrix* out);

}  // namespace sgnn::sparse

#endif  // SGNN_SPARSE_SERIALIZE_H_

// Compressed-sparse-row graph matrix and propagation kernels.
//
// Propagation — one application of the n x n sparse graph matrix to the
// n x F dense representation — is the paper's O(mF)-time elementary
// operation. This module is the "SP backend" of Table 6.

#ifndef SGNN_SPARSE_CSR_H_
#define SGNN_SPARSE_CSR_H_

#include <cstdint>
#include <vector>

#include "tensor/device.h"
#include "tensor/matrix.h"
#include "tensor/status.h"

namespace sgnn::sparse {

/// A square CSR matrix with float values, device-tagged so graph storage
/// shows up in the correct memory column (FB keeps it on the accelerator,
/// MB on the host).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from raw CSR arrays. `indptr` has n+1 entries; `indices` and
  /// `values` have nnz entries. Column indices within a row need not be
  /// sorted but must be < n.
  CsrMatrix(int64_t n, std::vector<int64_t> indptr,
            std::vector<int32_t> indices, std::vector<float> values,
            Device device = Device::kHost);

  CsrMatrix(const CsrMatrix& other);
  CsrMatrix& operator=(const CsrMatrix& other);
  CsrMatrix(CsrMatrix&& other) noexcept;
  CsrMatrix& operator=(CsrMatrix&& other) noexcept;
  ~CsrMatrix();

  int64_t n() const { return n_; }
  int64_t nnz() const { return static_cast<int64_t>(indices_.size()); }
  Device device() const { return device_; }

  const std::vector<int64_t>& indptr() const { return indptr_; }
  const std::vector<int32_t>& indices() const { return indices_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  /// Storage bytes (indptr + indices + values), the O(m) graph footprint.
  size_t bytes() const;

  /// Re-tags storage onto another device (simulated transfer).
  void MoveToDevice(Device device);

  /// Out-degree (row nnz count) of node v.
  int64_t RowDegree(int64_t v) const { return indptr_[v + 1] - indptr_[v]; }

  /// out = this * x. Shapes: (n,n) x (n,F) -> (n,F). `out` must be
  /// pre-shaped (n, F); aliasing with x is not allowed.
  void SpMM(const Matrix& x, Matrix* out) const;

  /// y = this * x for a single vector.
  void SpMV(const std::vector<float>& x, std::vector<float>* y) const;

  /// Weighted row sums: out[i] = sum_j values[i][j].
  std::vector<double> RowSums() const;

 private:
  void Register() const;
  void Unregister() const;

  int64_t n_ = 0;
  Device device_ = Device::kHost;
  std::vector<int64_t> indptr_;
  std::vector<int32_t> indices_;
  std::vector<float> values_;
};

}  // namespace sgnn::sparse

#endif  // SGNN_SPARSE_CSR_H_

#include "sparse/edge_index.h"

#include <cstring>

namespace sgnn::sparse {

EdgeIndex::EdgeIndex(const CsrMatrix& csr, Device device)
    : n_(csr.n()), device_(device) {
  src_.reserve(static_cast<size_t>(csr.nnz()));
  dst_.reserve(static_cast<size_t>(csr.nnz()));
  weight_.reserve(static_cast<size_t>(csr.nnz()));
  const auto& indptr = csr.indptr();
  const auto& indices = csr.indices();
  const auto& values = csr.values();
  for (int64_t i = 0; i < n_; ++i) {
    for (int64_t p = indptr[static_cast<size_t>(i)];
         p < indptr[static_cast<size_t>(i) + 1]; ++p) {
      dst_.push_back(static_cast<int32_t>(i));
      src_.push_back(indices[static_cast<size_t>(p)]);
      weight_.push_back(values[static_cast<size_t>(p)]);
    }
  }
  Register();
}

EdgeIndex::~EdgeIndex() { Unregister(); }

EdgeIndex::EdgeIndex(EdgeIndex&& other) noexcept
    : n_(other.n_),
      device_(other.device_),
      src_(std::move(other.src_)),
      dst_(std::move(other.dst_)),
      weight_(std::move(other.weight_)) {
  other.n_ = 0;
  other.src_.clear();
  other.dst_.clear();
  other.weight_.clear();
}

EdgeIndex& EdgeIndex::operator=(EdgeIndex&& other) noexcept {
  if (this == &other) return *this;
  Unregister();
  n_ = other.n_;
  device_ = other.device_;
  src_ = std::move(other.src_);
  dst_ = std::move(other.dst_);
  weight_ = std::move(other.weight_);
  other.n_ = 0;
  other.src_.clear();
  other.dst_.clear();
  other.weight_.clear();
  return *this;
}

size_t EdgeIndex::bytes() const {
  return src_.size() * sizeof(int32_t) + dst_.size() * sizeof(int32_t) +
         weight_.size() * sizeof(float);
}

void EdgeIndex::Register() const {
  if (bytes() > 0) DeviceTracker::Global().OnAlloc(device_, bytes());
}

void EdgeIndex::Unregister() const {
  if (bytes() > 0) DeviceTracker::Global().OnFree(device_, bytes());
}

void EdgeIndex::PropagateGatherScatter(const Matrix& x, Matrix* out) const {
  SGNN_CHECK(x.rows() == n_, "EI propagate: input row count must equal n");
  SGNN_CHECK(out->rows() == n_ && out->cols() == x.cols(),
             "EI propagate: output shape mismatch");
  const int64_t f = x.cols();
  const int64_t e = num_edges();
  // Gather: one weighted message per edge. This buffer is what inflates the
  // EI backend's memory to O(mF).
  Matrix messages(e, f, device_);
  for (int64_t p = 0; p < e; ++p) {
    const float* xrow = x.row(src_[static_cast<size_t>(p)]);
    float* mrow = messages.row(p);
    const float w = weight_[static_cast<size_t>(p)];
    for (int64_t j = 0; j < f; ++j) mrow[j] = w * xrow[j];
  }
  // Scatter-add into destinations.
  out->Fill(0.0f);
  for (int64_t p = 0; p < e; ++p) {
    float* orow = out->row(dst_[static_cast<size_t>(p)]);
    const float* mrow = messages.row(p);
    for (int64_t j = 0; j < f; ++j) orow[j] += mrow[j];
  }
}

}  // namespace sgnn::sparse

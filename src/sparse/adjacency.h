// Graph adjacency construction and generalized normalization.
//
// Implements the paper's graph preprocessing protocol: symmetrize, add self
// loops (Ā = A + I), and normalize with the generalized coefficient ρ:
//   Ã = D̄^{ρ-1} Ā D̄^{-ρ},  ρ ∈ [0, 1]   (Section 2.1 / RQ9)
// ρ = 1/2 is the symmetric GCN normalization; ρ = 1 is the random-walk one.
// Filters then operate on Ã and on L̃ = I - Ã implicitly.

#ifndef SGNN_SPARSE_ADJACENCY_H_
#define SGNN_SPARSE_ADJACENCY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "sparse/csr.h"
#include "tensor/status.h"

namespace sgnn::sparse {

/// An undirected edge list (pairs may appear in either or both directions).
using EdgeList = std::vector<std::pair<int32_t, int32_t>>;

/// Builds the unweighted adjacency CSR from an edge list.
/// Symmetrizes (adds both directions), optionally adds self loops, and
/// removes duplicate edges. Node ids must lie in [0, n).
[[nodiscard]] Result<CsrMatrix> BuildAdjacency(int64_t n, const EdgeList& edges,
                                 bool add_self_loops);

/// Returns Ã = D̄^{ρ-1} Ā D̄^{-ρ} for a self-looped adjacency `adj`.
/// Rows/cols with zero degree are left zero.
CsrMatrix NormalizeAdjacency(const CsrMatrix& adj, double rho);

/// Degrees (row nnz counts) of an adjacency matrix.
std::vector<int64_t> Degrees(const CsrMatrix& adj);

/// Serializes a CSR matrix to a binary file. Layout: n, nnz, indptr,
/// indices, values (little-endian, fixed-width).
[[nodiscard]] Status SaveCsr(const CsrMatrix& m, const std::string& path);

/// Loads a CSR matrix written by SaveCsr.
[[nodiscard]] Result<CsrMatrix> LoadCsr(const std::string& path);

}  // namespace sgnn::sparse

#endif  // SGNN_SPARSE_ADJACENCY_H_

#include "sparse/csr.h"

#include <cstring>

#include "tensor/parallel.h"

namespace sgnn::sparse {

namespace {

/// Rows per SpMM/SpMV chunk: targets ~64k multiply-adds per chunk so chunk
/// dispatch overhead stays under ~1% of kernel time (docs/PERFORMANCE.md).
/// Boundaries depend only on the matrix shape, so results are identical at
/// any thread count (each output row is written by exactly one chunk).
int64_t RowGrain(int64_t n, int64_t nnz, int64_t f) {
  const int64_t avg_row_flops = (n > 0 ? nnz / n + 1 : 1) * (f > 0 ? f : 1);
  return parallel::GrainForFlops(avg_row_flops, int64_t{1} << 16);
}

}  // namespace

CsrMatrix::CsrMatrix(int64_t n, std::vector<int64_t> indptr,
                     std::vector<int32_t> indices, std::vector<float> values,
                     Device device)
    : n_(n),
      device_(device),
      indptr_(std::move(indptr)),
      indices_(std::move(indices)),
      values_(std::move(values)) {
  SGNN_CHECK(static_cast<int64_t>(indptr_.size()) == n_ + 1,
             "CsrMatrix: indptr must have n+1 entries");
  SGNN_CHECK(indices_.size() == values_.size(),
             "CsrMatrix: indices/values size mismatch");
  SGNN_CHECK(indptr_.empty() ||
                 indptr_.back() == static_cast<int64_t>(indices_.size()),
             "CsrMatrix: indptr end must equal nnz");
  Register();
}

CsrMatrix::CsrMatrix(const CsrMatrix& other)
    : n_(other.n_),
      device_(other.device_),
      indptr_(other.indptr_),
      indices_(other.indices_),
      values_(other.values_) {
  Register();
}

CsrMatrix& CsrMatrix::operator=(const CsrMatrix& other) {
  if (this == &other) return *this;
  Unregister();
  n_ = other.n_;
  device_ = other.device_;
  indptr_ = other.indptr_;
  indices_ = other.indices_;
  values_ = other.values_;
  Register();
  return *this;
}

CsrMatrix::CsrMatrix(CsrMatrix&& other) noexcept
    : n_(other.n_),
      device_(other.device_),
      indptr_(std::move(other.indptr_)),
      indices_(std::move(other.indices_)),
      values_(std::move(other.values_)) {
  other.n_ = 0;
  other.indptr_.clear();
  other.indices_.clear();
  other.values_.clear();
}

CsrMatrix& CsrMatrix::operator=(CsrMatrix&& other) noexcept {
  if (this == &other) return *this;
  Unregister();
  n_ = other.n_;
  device_ = other.device_;
  indptr_ = std::move(other.indptr_);
  indices_ = std::move(other.indices_);
  values_ = std::move(other.values_);
  other.n_ = 0;
  other.indptr_.clear();
  other.indices_.clear();
  other.values_.clear();
  return *this;
}

CsrMatrix::~CsrMatrix() { Unregister(); }

size_t CsrMatrix::bytes() const {
  return indptr_.size() * sizeof(int64_t) + indices_.size() * sizeof(int32_t) +
         values_.size() * sizeof(float);
}

void CsrMatrix::Register() const {
  if (bytes() > 0) DeviceTracker::Global().OnAlloc(device_, bytes());
}

void CsrMatrix::Unregister() const {
  if (bytes() > 0) DeviceTracker::Global().OnFree(device_, bytes());
}

void CsrMatrix::MoveToDevice(Device device) {
  if (device == device_) return;
  Unregister();
  device_ = device;
  Register();
}

void CsrMatrix::SpMM(const Matrix& x, Matrix* out) const {
  SGNN_CHECK(x.rows() == n_, "SpMM: input row count must equal n");
  SGNN_CHECK(out->rows() == n_ && out->cols() == x.cols(),
             "SpMM: output shape mismatch");
  SGNN_CHECK(out->data() != x.data(), "SpMM: output must not alias input");
  const int64_t f = x.cols();
  // Row-partitioned: each chunk owns a contiguous row range of `out`, so
  // the parallel result is bit-identical to the serial one.
  parallel::ParallelFor(
      0, n_, RowGrain(n_, nnz(), f), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          float* orow = out->row(i);
          std::memset(orow, 0, static_cast<size_t>(f) * sizeof(float));
          for (int64_t p = indptr_[i]; p < indptr_[i + 1]; ++p) {
            const float w = values_[p];
            const float* xrow = x.row(indices_[p]);
            for (int64_t j = 0; j < f; ++j) orow[j] += w * xrow[j];
          }
        }
      });
}

void CsrMatrix::SpMV(const std::vector<float>& x,
                     std::vector<float>* y) const {
  SGNN_CHECK(static_cast<int64_t>(x.size()) == n_, "SpMV: size mismatch");
  y->assign(static_cast<size_t>(n_), 0.0f);
  parallel::ParallelFor(
      0, n_, RowGrain(n_, nnz(), 1), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          double acc = 0.0;
          for (int64_t p = indptr_[i]; p < indptr_[i + 1]; ++p) {
            acc += double(values_[p]) * x[static_cast<size_t>(indices_[p])];
          }
          (*y)[static_cast<size_t>(i)] = static_cast<float>(acc);
        }
      });
}

std::vector<double> CsrMatrix::RowSums() const {
  std::vector<double> sums(static_cast<size_t>(n_), 0.0);
  parallel::ParallelFor(
      0, n_, RowGrain(n_, nnz(), 1), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          double acc = 0.0;
          for (int64_t p = indptr_[i]; p < indptr_[i + 1]; ++p) {
            acc += values_[p];
          }
          sums[static_cast<size_t>(i)] = acc;
        }
      });
  return sums;
}

}  // namespace sgnn::sparse

// Edge-index ("EI") propagation backend.
//
// Mirrors torch_geometric.EdgeIndex-style gather-scatter message passing:
// propagation materializes one message per directed edge, costing O(mF)
// *memory* in addition to O(mF) time. Table 6 contrasts this against the
// CSR "SP" backend, which streams messages and needs no per-edge buffer.

#ifndef SGNN_SPARSE_EDGE_INDEX_H_
#define SGNN_SPARSE_EDGE_INDEX_H_

#include <cstdint>
#include <vector>

#include "sparse/csr.h"
#include "tensor/matrix.h"

namespace sgnn::sparse {

/// COO edge storage with per-edge weights, device-tagged.
class EdgeIndex {
 public:
  EdgeIndex() = default;

  /// Builds from a CSR matrix (keeps the same weights).
  explicit EdgeIndex(const CsrMatrix& csr, Device device = Device::kHost);

  ~EdgeIndex();
  EdgeIndex(const EdgeIndex&) = delete;
  EdgeIndex& operator=(const EdgeIndex&) = delete;
  EdgeIndex(EdgeIndex&& other) noexcept;
  EdgeIndex& operator=(EdgeIndex&& other) noexcept;

  int64_t n() const { return n_; }
  int64_t num_edges() const { return static_cast<int64_t>(src_.size()); }
  Device device() const { return device_; }

  /// Storage bytes of the COO arrays.
  size_t bytes() const;

  /// out = A x via explicit gather (per-edge message buffer) then scatter.
  /// The message buffer is allocated on this EdgeIndex's device — this is the
  /// O(mF) memory term that makes the EI backend OOM on large graphs.
  void PropagateGatherScatter(const Matrix& x, Matrix* out) const;

 private:
  void Register() const;
  void Unregister() const;

  int64_t n_ = 0;
  Device device_ = Device::kHost;
  std::vector<int32_t> src_;
  std::vector<int32_t> dst_;
  std::vector<float> weight_;
};

}  // namespace sgnn::sparse

#endif  // SGNN_SPARSE_EDGE_INDEX_H_

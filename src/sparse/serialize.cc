#include "sparse/serialize.h"

#include <string>
#include <vector>

namespace sgnn::sparse {

void AppendCsr(const CsrMatrix& m, serialize::Writer* w) {
  w->PutI64(m.n());
  w->PutI64(m.nnz());
  for (const int64_t v : m.indptr()) w->PutI64(v);
  for (const int32_t v : m.indices()) w->PutI32(v);
  for (const float v : m.values()) w->PutF32(v);
}

Status ReadCsr(serialize::Reader* r, Device device, CsrMatrix* out) {
  int64_t n = 0, nnz = 0;
  SGNN_RETURN_IF_ERROR(r->I64(&n));
  SGNN_RETURN_IF_ERROR(r->I64(&nnz));
  if (n < 0 || nnz < 0) {
    return Status::IOError("corrupt CSR header: n=" + std::to_string(n) +
                           " nnz=" + std::to_string(nnz));
  }
  // Each indptr entry is 8 bytes and each nnz entry at least 8; a header
  // promising more entries than remaining bytes is corrupt, not just big.
  if (static_cast<uint64_t>(n) > r->remaining() / 8 ||
      static_cast<uint64_t>(nnz) > r->remaining() / 8) {
    return Status::IOError("CSR header larger than payload");
  }
  std::vector<int64_t> indptr(static_cast<size_t>(n) + 1);
  for (auto& v : indptr) SGNN_RETURN_IF_ERROR(r->I64(&v));
  std::vector<int32_t> indices(static_cast<size_t>(nnz));
  for (auto& v : indices) SGNN_RETURN_IF_ERROR(r->I32(&v));
  std::vector<float> values(static_cast<size_t>(nnz));
  for (auto& v : values) SGNN_RETURN_IF_ERROR(r->F32(&v));
  if (indptr.front() != 0 || indptr.back() != nnz) {
    return Status::IOError("inconsistent CSR indptr");
  }
  for (size_t i = 0; i + 1 < indptr.size(); ++i) {
    if (indptr[i] > indptr[i + 1]) {
      return Status::IOError("non-monotonic CSR indptr");
    }
  }
  for (const int32_t c : indices) {
    if (c < 0 || c >= n) return Status::IOError("CSR column index out of range");
  }
  *out = CsrMatrix(n, std::move(indptr), std::move(indices), std::move(values),
                   device);
  return Status::OK();
}

}  // namespace sgnn::sparse

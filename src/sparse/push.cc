#include "sparse/push.h"

#include <algorithm>
#include <cmath>

#include "tensor/parallel.h"
#include "tensor/status.h"

namespace sgnn::sparse {

namespace {

/// Lane partition of a frontier: boundaries depend only on the frontier
/// size (never the thread count), so the ordered merge below produces the
/// same bits at 1 and N threads. At most kMaxLanes lanes are ever live,
/// which bounds the O(n) per-lane delta buffers.
constexpr int64_t kMaxLanes = 8;
constexpr int64_t kMinLaneGrain = 64;

int64_t LaneGrain(int64_t frontier_size) {
  return std::max(kMinLaneGrain, (frontier_size + kMaxLanes - 1) / kMaxLanes);
}

/// Residual mass spread by one lane of frontier sources, kept separate per
/// lane so lanes can run concurrently and still be merged in lane order.
struct LaneBuffer {
  std::vector<double> delta;    ///< dense per-node accumulated mass
  std::vector<int32_t> touched; ///< nodes with (possibly) nonzero delta,
                                ///< in first-touch order within the lane
  int64_t edge_touches = 0;

  void EnsureSize(int64_t n) {
    if (static_cast<int64_t>(delta.size()) < n) {
      delta.assign(static_cast<size_t>(n), 0.0);
    }
  }
};

}  // namespace

PushStats ApproxPprPush(const CsrMatrix& norm, const PushConfig& config,
                        const std::vector<float>& x,
                        std::vector<float>* out) {
  const int64_t n = norm.n();
  SGNN_CHECK(static_cast<int64_t>(x.size()) == n,
             "ApproxPprPush: signal size mismatch");
  PushStats stats;
  std::vector<double> residual(x.begin(), x.end());
  std::vector<double> reserve(static_cast<size_t>(n), 0.0);
  const auto& indptr = norm.indptr();
  const auto& indices = norm.indices();
  const auto& values = norm.values();
  const double alpha = config.alpha;

  auto threshold = [&](int64_t u) {
    return config.epsilon *
           static_cast<double>(indptr[static_cast<size_t>(u) + 1] -
                               indptr[static_cast<size_t>(u)] + 1);
  };

  // Synchronous rounds: gather the frontier of super-threshold nodes,
  // convert their residual to reserve, and spread the remainder along
  // edges. Per-source-range lanes accumulate into thread-local delta
  // buffers; lanes are merged into `residual` in lane order, so the
  // parallel schedule never changes the floating-point summation order.
  std::vector<int32_t> frontier;
  std::vector<double> r_front;
  std::vector<LaneBuffer> lanes;

  while (true) {
    frontier.clear();
    for (int64_t u = 0; u < n; ++u) {
      if (std::fabs(residual[static_cast<size_t>(u)]) > threshold(u)) {
        frontier.push_back(static_cast<int32_t>(u));
      }
    }
    if (frontier.empty()) break;
    if (config.max_pushes > 0) {
      const int64_t remaining = config.max_pushes - stats.pushes;
      if (remaining <= 0) break;
      if (static_cast<int64_t>(frontier.size()) > remaining) {
        frontier.resize(static_cast<size_t>(remaining));
      }
    }
    const int64_t fs = static_cast<int64_t>(frontier.size());
    stats.pushes += fs;

    // Snapshot and settle the frontier before any spreading: lanes read
    // only the snapshot, so merge timing cannot affect what they see.
    r_front.resize(static_cast<size_t>(fs));
    for (int64_t i = 0; i < fs; ++i) {
      const auto u = static_cast<size_t>(frontier[static_cast<size_t>(i)]);
      r_front[static_cast<size_t>(i)] = residual[u];
      reserve[u] += alpha * residual[u];
      residual[u] = 0.0;
    }

    const int64_t grain = LaneGrain(fs);
    const int64_t num_lanes = parallel::NumChunks(0, fs, grain);
    const bool concurrent = parallel::NumThreads() > 1 &&
                            !parallel::InParallelRegion() && num_lanes > 1;
    // Serial execution merges each lane immediately and reuses one buffer;
    // concurrent execution gives every lane its own buffer and merges after
    // the barrier. Both orders are "lane 0 fully, then lane 1, ..." so the
    // results are identical.
    lanes.resize(static_cast<size_t>(concurrent ? num_lanes : 1));

    auto spread_lane = [&](LaneBuffer* lane, int64_t lo, int64_t hi) {
      lane->EnsureSize(n);
      for (int64_t i = lo; i < hi; ++i) {
        const auto u = static_cast<size_t>(frontier[static_cast<size_t>(i)]);
        const double spread =
            (1.0 - alpha) * r_front[static_cast<size_t>(i)];
        for (int64_t p = indptr[u]; p < indptr[u + 1]; ++p) {
          const auto v = static_cast<size_t>(indices[static_cast<size_t>(p)]);
          // Row-wise application of Ã: mass flows along Ã[v][u]; for the
          // symmetric normalization Ã[v][u] == Ã[u][v], so the row weight
          // is reusable here.
          if (lane->delta[v] == 0.0) {
            lane->touched.push_back(static_cast<int32_t>(v));
          }
          lane->delta[v] += spread * double(values[static_cast<size_t>(p)]);
          ++lane->edge_touches;
        }
      }
    };
    auto merge_lane = [&](LaneBuffer* lane) {
      for (const int32_t v : lane->touched) {
        residual[static_cast<size_t>(v)] += lane->delta[static_cast<size_t>(v)];
        lane->delta[static_cast<size_t>(v)] = 0.0;
      }
      lane->touched.clear();
      stats.edge_touches += lane->edge_touches;
      lane->edge_touches = 0;
    };

    if (concurrent) {
      parallel::ParallelFor(0, fs, grain, [&](int64_t lo, int64_t hi) {
        spread_lane(&lanes[static_cast<size_t>(lo / grain)], lo, hi);
      });
      for (auto& lane : lanes) merge_lane(&lane);
    } else {
      for (int64_t lane_idx = 0; lane_idx < num_lanes; ++lane_idx) {
        const int64_t lo = lane_idx * grain;
        const int64_t hi = std::min(fs, lo + grain);
        spread_lane(&lanes[0], lo, hi);
        merge_lane(&lanes[0]);
      }
    }
  }

  out->resize(static_cast<size_t>(n));
  for (int64_t u = 0; u < n; ++u) {
    // Unpushed residual still contributes its α-weighted mass (first-order
    // correction keeps the estimate unbiased at threshold scale).
    (*out)[static_cast<size_t>(u)] = static_cast<float>(
        reserve[static_cast<size_t>(u)] +
        alpha * residual[static_cast<size_t>(u)]);
    stats.residual_l1 += std::fabs(residual[static_cast<size_t>(u)]);
  }
  return stats;
}

PushStats ApproxPprPushMatrix(const CsrMatrix& norm, const PushConfig& config,
                              const Matrix& x, Matrix* out) {
  SGNN_CHECK(x.rows() == norm.n(), "ApproxPprPushMatrix: shape mismatch");
  *out = Matrix(x.rows(), x.cols(), x.device());
  // Feature channels are independent pushes, so the matrix form
  // parallelizes across columns; the nested per-column push then runs its
  // lanes serially (nested-call fallback). Stats are reduced in column
  // order below regardless of which thread ran which column.
  std::vector<PushStats> col_stats(static_cast<size_t>(x.cols()));
  parallel::ParallelFor(0, x.cols(), 1, [&](int64_t lo, int64_t hi) {
    std::vector<float> column(static_cast<size_t>(x.rows()));
    std::vector<float> result;
    for (int64_t f = lo; f < hi; ++f) {
      for (int64_t i = 0; i < x.rows(); ++i) {
        column[static_cast<size_t>(i)] = x.at(i, f);
      }
      col_stats[static_cast<size_t>(f)] =
          ApproxPprPush(norm, config, column, &result);
      for (int64_t i = 0; i < x.rows(); ++i) {
        out->at(i, f) = result[static_cast<size_t>(i)];
      }
    }
  });
  PushStats total;
  for (const PushStats& s : col_stats) {
    total.pushes += s.pushes;
    total.edge_touches += s.edge_touches;
    total.residual_l1 += s.residual_l1;
  }
  return total;
}

}  // namespace sgnn::sparse

#include "sparse/push.h"

#include <cmath>
#include <deque>

#include "tensor/status.h"

namespace sgnn::sparse {

PushStats ApproxPprPush(const CsrMatrix& norm, const PushConfig& config,
                        const std::vector<float>& x,
                        std::vector<float>* out) {
  const int64_t n = norm.n();
  SGNN_CHECK(static_cast<int64_t>(x.size()) == n,
             "ApproxPprPush: signal size mismatch");
  PushStats stats;
  std::vector<double> residual(x.begin(), x.end());
  std::vector<double> reserve(static_cast<size_t>(n), 0.0);
  std::vector<bool> queued(static_cast<size_t>(n), false);
  std::deque<int32_t> queue;
  const auto& indptr = norm.indptr();
  const auto& indices = norm.indices();
  const auto& values = norm.values();

  auto threshold = [&](int64_t u) {
    return config.epsilon *
           static_cast<double>(indptr[static_cast<size_t>(u) + 1] -
                               indptr[static_cast<size_t>(u)] + 1);
  };
  for (int64_t u = 0; u < n; ++u) {
    if (std::fabs(residual[static_cast<size_t>(u)]) > threshold(u)) {
      queue.push_back(static_cast<int32_t>(u));
      queued[static_cast<size_t>(u)] = true;
    }
  }
  const double alpha = config.alpha;
  while (!queue.empty()) {
    if (config.max_pushes > 0 && stats.pushes >= config.max_pushes) break;
    const int32_t u = queue.front();
    queue.pop_front();
    queued[static_cast<size_t>(u)] = false;
    const double r = residual[static_cast<size_t>(u)];
    if (std::fabs(r) <= threshold(u)) continue;
    ++stats.pushes;
    reserve[static_cast<size_t>(u)] += alpha * r;
    residual[static_cast<size_t>(u)] = 0.0;
    const double spread = (1.0 - alpha) * r;
    for (int64_t p = indptr[static_cast<size_t>(u)];
         p < indptr[static_cast<size_t>(u) + 1]; ++p) {
      const int32_t v = indices[static_cast<size_t>(p)];
      // Row-wise application of Ã: mass flows along Ã[v][u]; for the
      // symmetric normalization Ã[v][u] == Ã[u][v], so the row weight is
      // reusable here.
      residual[static_cast<size_t>(v)] +=
          spread * static_cast<double>(values[static_cast<size_t>(p)]);
      ++stats.edge_touches;
      if (!queued[static_cast<size_t>(v)] &&
          std::fabs(residual[static_cast<size_t>(v)]) > threshold(v)) {
        queue.push_back(v);
        queued[static_cast<size_t>(v)] = true;
      }
    }
  }
  out->resize(static_cast<size_t>(n));
  for (int64_t u = 0; u < n; ++u) {
    // Unpushed residual still contributes its α-weighted mass (first-order
    // correction keeps the estimate unbiased at threshold scale).
    (*out)[static_cast<size_t>(u)] = static_cast<float>(
        reserve[static_cast<size_t>(u)] +
        alpha * residual[static_cast<size_t>(u)]);
    stats.residual_l1 += std::fabs(residual[static_cast<size_t>(u)]);
  }
  return stats;
}

PushStats ApproxPprPushMatrix(const CsrMatrix& norm, const PushConfig& config,
                              const Matrix& x, Matrix* out) {
  SGNN_CHECK(x.rows() == norm.n(), "ApproxPprPushMatrix: shape mismatch");
  *out = Matrix(x.rows(), x.cols(), x.device());
  PushStats total;
  std::vector<float> column(static_cast<size_t>(x.rows()));
  std::vector<float> result;
  for (int64_t f = 0; f < x.cols(); ++f) {
    for (int64_t i = 0; i < x.rows(); ++i) {
      column[static_cast<size_t>(i)] = x.at(i, f);
    }
    const PushStats s = ApproxPprPush(norm, config, column, &result);
    total.pushes += s.pushes;
    total.edge_touches += s.edge_touches;
    total.residual_l1 += s.residual_l1;
    for (int64_t i = 0; i < x.rows(); ++i) {
      out->at(i, f) = result[static_cast<size_t>(i)];
    }
  }
  return total;
}

}  // namespace sgnn::sparse

#include "sparse/adjacency.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sparse/serialize.h"

namespace sgnn::sparse {

Result<CsrMatrix> BuildAdjacency(int64_t n, const EdgeList& edges,
                                 bool add_self_loops) {
  if (n <= 0) return Status::InvalidArgument("BuildAdjacency: n must be > 0");
  // Symmetrized, deduplicated edge set built via sort-unique over directed
  // pairs. Memory: O(m) int64 keys.
  std::vector<int64_t> keys;
  keys.reserve(edges.size() * 2 + (add_self_loops ? static_cast<size_t>(n) : 0));
  for (const auto& [u, v] : edges) {
    if (u < 0 || v < 0 || u >= n || v >= n) {
      return Status::InvalidArgument("BuildAdjacency: edge endpoint out of range");
    }
    keys.push_back(static_cast<int64_t>(u) * n + v);
    keys.push_back(static_cast<int64_t>(v) * n + u);
  }
  if (add_self_loops) {
    for (int64_t i = 0; i < n; ++i) keys.push_back(i * n + i);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<int64_t> indptr(static_cast<size_t>(n) + 1, 0);
  std::vector<int32_t> indices(keys.size());
  std::vector<float> values(keys.size(), 1.0f);
  for (size_t p = 0; p < keys.size(); ++p) {
    const int64_t row = keys[p] / n;
    indptr[static_cast<size_t>(row) + 1]++;
    indices[p] = static_cast<int32_t>(keys[p] % n);
  }
  for (int64_t i = 0; i < n; ++i)
    indptr[static_cast<size_t>(i) + 1] += indptr[static_cast<size_t>(i)];
  return CsrMatrix(n, std::move(indptr), std::move(indices), std::move(values));
}

CsrMatrix NormalizeAdjacency(const CsrMatrix& adj, double rho) {
  const int64_t n = adj.n();
  const std::vector<double> deg = adj.RowSums();
  std::vector<double> left(static_cast<size_t>(n)), right(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double d = deg[static_cast<size_t>(i)];
    if (d > 0) {
      left[static_cast<size_t>(i)] = std::pow(d, rho - 1.0);
      right[static_cast<size_t>(i)] = std::pow(d, -rho);
    } else {
      left[static_cast<size_t>(i)] = 0.0;
      right[static_cast<size_t>(i)] = 0.0;
    }
  }
  std::vector<float> values = adj.values();
  const auto& indptr = adj.indptr();
  const auto& indices = adj.indices();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t p = indptr[static_cast<size_t>(i)];
         p < indptr[static_cast<size_t>(i) + 1]; ++p) {
      values[static_cast<size_t>(p)] = static_cast<float>(
          values[static_cast<size_t>(p)] * left[static_cast<size_t>(i)] *
          right[static_cast<size_t>(indices[static_cast<size_t>(p)])]);
    }
  }
  return CsrMatrix(n, adj.indptr(), adj.indices(), std::move(values),
                   adj.device());
}

std::vector<int64_t> Degrees(const CsrMatrix& adj) {
  std::vector<int64_t> deg(static_cast<size_t>(adj.n()));
  for (int64_t i = 0; i < adj.n(); ++i)
    deg[static_cast<size_t>(i)] = adj.RowDegree(i);
  return deg;
}

Status SaveCsr(const CsrMatrix& m, const std::string& path) {
  serialize::Writer w;
  AppendCsr(m, &w);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const bool ok =
      std::fwrite(w.buffer().data(), 1, w.size(), f) == w.size();
  std::fclose(f);
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<CsrMatrix> LoadCsr(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string bytes;
  char chunk[1 << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("short read from " + path);
  serialize::Reader r(bytes.data(), bytes.size());
  CsrMatrix m;
  const Status st = ReadCsr(&r, Device::kHost, &m);
  if (!st.ok()) {
    return Status::IOError("corrupt CSR snapshot " + path + ": " +
                           st.message());
  }
  return m;
}

}  // namespace sgnn::sparse

// Push-based approximate graph propagation (AGP/APPNP-style forward push).
//
// The paper's pipeline "incorporates efficient data processing techniques"
// from approximate-propagation work (AGP, SCARA, GBP): instead of K dense
// SpMM passes, residual mass is pushed along edges only where it exceeds a
// degree-scaled threshold, trading bounded error for large speedups on
// sparse signals. Used as an alternative mini-batch precompute path; the
// ablation bench quantifies the speed/accuracy trade-off.
//
// Where this sits in the filter taxonomy (see core/filter.h): push is a
// realization strategy, not a filter of its own. It computes the same PPR
// series as the fixed `ppr` filter (fixed_filters.h) and can substitute for
// the hop-term precompute of any summed-form filter (poly_base.h,
// bank_filters.h); the factored product-form filters (product_filters.h)
// cannot use it because their first-order factors must be applied
// sequentially at full precision.
//
// Execution model: propagation proceeds in synchronous frontier rounds.
// Within a round the frontier is split into per-source-range lanes whose
// partition depends only on the frontier size; lanes accumulate into
// thread-local delta buffers (tensor/parallel.h) and are merged in lane
// order, so results are bit-identical at any thread count
// (docs/PERFORMANCE.md). The matrix form parallelizes across feature
// columns instead, with the per-column pushes running their lanes inline.

#ifndef SGNN_SPARSE_PUSH_H_
#define SGNN_SPARSE_PUSH_H_

#include <cstdint>
#include <vector>

#include "sparse/csr.h"
#include "tensor/matrix.h"

namespace sgnn::sparse {

/// Parameters for approximate PPR propagation.
struct PushConfig {
  /// Teleport probability α of the PPR series Σ α(1-α)^k Ã^k.
  double alpha = 0.2;
  /// Residual threshold: node u pushes while |r[u]| > epsilon * (deg(u)+1).
  /// Smaller = more accurate and slower; 0 reproduces the exact limit.
  double epsilon = 1e-4;
  /// Hard cap on total pushes (safety valve; 0 = unlimited).
  int64_t max_pushes = 0;
};

/// Statistics of one push run.
struct PushStats {
  int64_t pushes = 0;         ///< node-push operations performed
  int64_t edge_touches = 0;   ///< edge traversals (the real work)
  double residual_l1 = 0.0;   ///< remaining |r|_1 mass (error bound)
};

/// Approximates p = Σ_k α(1-α)^k Ã^k x for one signal vector using
/// forward push on the weighted normalized adjacency `norm` (rows of Ã).
/// Guarantees per-node residual below epsilon * (deg+1) on return.
PushStats ApproxPprPush(const CsrMatrix& norm, const PushConfig& config,
                        const std::vector<float>& x, std::vector<float>* out);

/// Column-wise push over an n x F matrix; returns accumulated stats.
PushStats ApproxPprPushMatrix(const CsrMatrix& norm, const PushConfig& config,
                              const Matrix& x, Matrix* out);

}  // namespace sgnn::sparse

#endif  // SGNN_SPARSE_PUSH_H_

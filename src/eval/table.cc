#include "eval/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sgnn::eval {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      out << cell;
      if (c + 1 < widths.size()) {
        out << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    out << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (const size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtMeanStd(double mean, double stddev, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, mean, precision,
                stddev);
  return buf;
}

}  // namespace sgnn::eval

#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/status.h"

namespace sgnn::eval {

double Accuracy(const Matrix& logits, const std::vector<int32_t>& labels,
                const std::vector<int32_t>& rows) {
  if (rows.empty()) return 0.0;
  int64_t correct = 0;
  for (const int32_t r : rows) {
    const float* lrow = logits.row(r);
    int64_t best = 0;
    for (int64_t j = 1; j < logits.cols(); ++j) {
      if (lrow[j] > lrow[best]) best = j;
    }
    if (best == labels[static_cast<size_t>(r)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

double RocAucFromScores(const std::vector<double>& scores,
                        const std::vector<int32_t>& truth) {
  SGNN_CHECK(scores.size() == truth.size(), "RocAuc: size mismatch");
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  // Midranks for ties. `order` is sorted ascending, so a successor that is
  // not strictly greater is tied with the group head — same grouping as
  // `==` without comparing floats for equality.
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && !(scores[order[i]] < scores[order[j + 1]])) ++j;
    const double mid = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  int64_t n_pos = 0;
  for (size_t k = 0; k < n; ++k) {
    if (truth[k] == 1) {
      pos_rank_sum += rank[k];
      ++n_pos;
    }
  }
  const int64_t n_neg = static_cast<int64_t>(n) - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  const double u =
      pos_rank_sum - static_cast<double>(n_pos) * (n_pos + 1) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

double RocAuc(const Matrix& logits, const std::vector<int32_t>& labels,
              const std::vector<int32_t>& rows) {
  SGNN_CHECK(logits.cols() >= 2, "RocAuc: need two-class logits");
  std::vector<double> scores;
  std::vector<int32_t> truth;
  scores.reserve(rows.size());
  truth.reserve(rows.size());
  for (const int32_t r : rows) {
    scores.push_back(static_cast<double>(logits.at(r, 1)) - logits.at(r, 0));
    truth.push_back(labels[static_cast<size_t>(r)] == 1 ? 1 : 0);
  }
  return RocAucFromScores(scores, truth);
}

double R2Score(const Matrix& pred, const Matrix& target) {
  SGNN_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols(),
             "R2Score: shape mismatch");
  const int64_t n = target.size();
  if (n == 0) return 0.0;
  double mean = 0.0;
  for (int64_t i = 0; i < n; ++i) mean += target.data()[i];
  mean /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double t = target.data()[i];
    const double p = pred.data()[i];
    ss_res += (t - p) * (t - p);
    ss_tot += (t - mean) * (t - mean);
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double MacroF1(const Matrix& logits, const std::vector<int32_t>& labels,
               const std::vector<int32_t>& rows, int32_t num_classes) {
  std::vector<int64_t> tp(static_cast<size_t>(num_classes), 0);
  std::vector<int64_t> fp(static_cast<size_t>(num_classes), 0);
  std::vector<int64_t> fn(static_cast<size_t>(num_classes), 0);
  for (const int32_t r : rows) {
    const float* lrow = logits.row(r);
    int64_t pred = 0;
    for (int64_t j = 1; j < logits.cols(); ++j) {
      if (lrow[j] > lrow[pred]) pred = j;
    }
    const int32_t y = labels[static_cast<size_t>(r)];
    if (pred == y) {
      tp[static_cast<size_t>(y)]++;
    } else {
      fp[static_cast<size_t>(pred)]++;
      fn[static_cast<size_t>(y)]++;
    }
  }
  double f1_sum = 0.0;
  int32_t counted = 0;
  for (int32_t c = 0; c < num_classes; ++c) {
    const auto i = static_cast<size_t>(c);
    const double denom = 2.0 * tp[i] + fp[i] + fn[i];
    if (tp[i] + fp[i] + fn[i] == 0) continue;
    f1_sum += denom > 0 ? 2.0 * tp[i] / denom : 0.0;
    ++counted;
  }
  return counted > 0 ? f1_sum / counted : 0.0;
}

MeanStd Summarize(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  for (const double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - out.mean) * (v - out.mean);
  out.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

}  // namespace sgnn::eval

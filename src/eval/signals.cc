#include "eval/signals.h"

#include <cmath>

namespace sgnn::eval {

const std::vector<SignalFunction>& RegressionSignals() {
  static const std::vector<SignalFunction> signals = {
      {"band",
       [](double l) { return std::exp(-10.0 * (l - 1.0) * (l - 1.0)); }},
      {"combine", [](double l) { return std::fabs(std::sin(M_PI * l)); }},
      {"high", [](double l) { return 1.0 - std::exp(-10.0 * l * l); }},
      {"low", [](double l) { return std::exp(-10.0 * l * l); }},
      {"reject",
       [](double l) { return 1.0 - std::exp(-10.0 * (l - 1.0) * (l - 1.0)); }},
  };
  return signals;
}

}  // namespace sgnn::eval

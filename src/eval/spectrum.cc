#include "eval/spectrum.h"

#include <cmath>

#include "tensor/ops.h"
#include "tensor/status.h"

namespace sgnn::eval {

namespace {

/// Jackson damping coefficient g_k for an M-moment expansion; suppresses
/// Gibbs oscillations of the truncated Chebyshev series.
double Jackson(int k, int moments) {
  const double m = moments + 1.0;
  return ((m - k) * std::cos(M_PI * k / m) +
          std::sin(M_PI * k / m) / std::tan(M_PI / m)) /
         m;
}

/// y = B v where B = L̃ - I = -Ã (spectrum in [-1, 1]).
void ApplyShifted(const sparse::CsrMatrix& norm, const std::vector<float>& v,
                  std::vector<float>* y) {
  norm.SpMV(v, y);
  for (auto& e : *y) e = -e;
}

/// Chebyshev coefficients of the indicator of [a, b] ⊂ [-1, 1].
std::vector<double> IndicatorCoefficients(double a, double b, int moments) {
  std::vector<double> c(static_cast<size_t>(moments));
  const double ta = std::acos(std::max(-1.0, std::min(1.0, b)));  // θ small
  const double tb = std::acos(std::max(-1.0, std::min(1.0, a)));  // θ large
  c[0] = (tb - ta) / M_PI;
  for (int k = 1; k < moments; ++k) {
    c[static_cast<size_t>(k)] =
        2.0 * (std::sin(k * tb) - std::sin(k * ta)) / (k * M_PI);
  }
  return c;
}

}  // namespace

std::vector<double> KpmSpectralDensity(const sparse::CsrMatrix& norm,
                                       const KpmConfig& config) {
  const int64_t n = norm.n();
  SGNN_CHECK(n > 0, "KpmSpectralDensity: empty graph");
  std::vector<double> moments(static_cast<size_t>(config.moments), 0.0);
  Rng rng(config.seed * 0xA0761D6478BD642FULL + 41);
  std::vector<float> v(static_cast<size_t>(n)), prev(static_cast<size_t>(n)),
      cur(static_cast<size_t>(n)), next;
  for (int probe = 0; probe < config.probes; ++probe) {
    // Rademacher probe.
    for (auto& e : v) e = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
    // μ_k += <v, T_k(B) v> / n.
    cur = v;                       // T_0 v
    std::fill(prev.begin(), prev.end(), 0.0f);
    for (int k = 0; k < config.moments; ++k) {
      double dot = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        dot += double(v[static_cast<size_t>(i)]) * cur[static_cast<size_t>(i)];
      }
      moments[static_cast<size_t>(k)] += dot / static_cast<double>(n);
      // Advance recurrence: T_{k+1} = 2 B T_k - T_{k-1} (T_1 = B T_0).
      ApplyShifted(norm, cur, &next);
      if (k > 0) {
        for (int64_t i = 0; i < n; ++i) {
          next[static_cast<size_t>(i)] =
              2.0f * next[static_cast<size_t>(i)] -
              prev[static_cast<size_t>(i)];
        }
      }
      prev = cur;
      cur = next;
    }
  }
  for (auto& m : moments) m /= config.probes;

  // Evaluate the damped series at bin centers over y ∈ (-1, 1), then map to
  // λ = y + 1 ∈ (0, 2) and normalize to unit mass.
  std::vector<double> density(static_cast<size_t>(config.bins), 0.0);
  double total = 0.0;
  for (int b = 0; b < config.bins; ++b) {
    const double y = -1.0 + (b + 0.5) * 2.0 / config.bins;
    double f = Jackson(0, config.moments) * moments[0];
    double tkm1 = 1.0, tk = y;
    for (int k = 1; k < config.moments; ++k) {
      f += 2.0 * Jackson(k, config.moments) * moments[static_cast<size_t>(k)] *
           tk;
      const double tnext = 2.0 * y * tk - tkm1;
      tkm1 = tk;
      tk = tnext;
    }
    f /= (M_PI * std::sqrt(std::max(1e-9, 1.0 - y * y)));
    density[static_cast<size_t>(b)] = std::max(0.0, f);
    total += density[static_cast<size_t>(b)];
  }
  if (total > 0) {
    for (auto& d : density) d /= total;
  }
  return density;
}

std::vector<double> SignalBandEnergy(const sparse::CsrMatrix& norm,
                                     const Matrix& x, int num_bands,
                                     int moments) {
  SGNN_CHECK(x.rows() == norm.n(), "SignalBandEnergy: shape mismatch");
  SGNN_CHECK(num_bands >= 1, "SignalBandEnergy: need at least one band");
  const int64_t n = x.rows();
  std::vector<double> energy(static_cast<size_t>(num_bands), 0.0);
  std::vector<float> v(static_cast<size_t>(n)), prev(static_cast<size_t>(n)),
      cur(static_cast<size_t>(n)), next;
  // Precompute per-band indicator coefficients (bands over λ map to
  // y = λ - 1 bands).
  std::vector<std::vector<double>> coeffs;
  for (int b = 0; b < num_bands; ++b) {
    const double lo = -1.0 + b * 2.0 / num_bands;
    const double hi = -1.0 + (b + 1) * 2.0 / num_bands;
    coeffs.push_back(IndicatorCoefficients(lo, hi, moments));
  }
  for (int64_t f = 0; f < x.cols(); ++f) {
    for (int64_t i = 0; i < n; ++i) {
      v[static_cast<size_t>(i)] = x.at(i, f);
    }
    double norm2 = 0.0;
    for (const float e : v) norm2 += double(e) * e;
    if (norm2 <= 0) continue;
    // Walk the Chebyshev recurrence once, accumulating every band's
    // quadratic form <v, P_b v> on the fly.
    std::vector<double> acc(static_cast<size_t>(num_bands), 0.0);
    cur = v;
    std::fill(prev.begin(), prev.end(), 0.0f);
    for (int k = 0; k < moments; ++k) {
      double dot = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        dot += double(v[static_cast<size_t>(i)]) * cur[static_cast<size_t>(i)];
      }
      const double damped = Jackson(k, moments) * dot;
      for (int b = 0; b < num_bands; ++b) {
        acc[static_cast<size_t>(b)] +=
            coeffs[static_cast<size_t>(b)][static_cast<size_t>(k)] * damped;
      }
      ApplyShifted(norm, cur, &next);
      if (k > 0) {
        for (int64_t i = 0; i < n; ++i) {
          next[static_cast<size_t>(i)] =
              2.0f * next[static_cast<size_t>(i)] -
              prev[static_cast<size_t>(i)];
        }
      }
      prev = cur;
      cur = next;
    }
    for (int b = 0; b < num_bands; ++b) {
      energy[static_cast<size_t>(b)] +=
          std::max(0.0, acc[static_cast<size_t>(b)]) / norm2;
    }
  }
  // Normalize across bands (projector truncation leaves small leakage).
  double total = 0.0;
  for (const double e : energy) total += e;
  if (total > 0) {
    for (auto& e : energy) e /= total;
  }
  return energy;
}

std::vector<double> LabelBandEnergy(const sparse::CsrMatrix& norm,
                                    const std::vector<int32_t>& labels,
                                    int32_t num_classes, int num_bands,
                                    int moments) {
  SGNN_CHECK(static_cast<int64_t>(labels.size()) == norm.n(),
             "LabelBandEnergy: label count mismatch");
  Matrix onehot(norm.n(), num_classes, Device::kHost);
  for (int64_t i = 0; i < norm.n(); ++i) {
    onehot.at(i, labels[static_cast<size_t>(i)]) = 1.0f;
  }
  // Center each class column: the all-ones direction is (close to) the
  // trivial λ ≈ 0 eigenvector and would swamp the low band for any labels.
  Matrix mean(1, num_classes, Device::kHost);
  ops::ColumnSum(onehot, &mean);
  ops::Scale(static_cast<float>(-1.0 / static_cast<double>(norm.n())), &mean);
  ops::AddRowBroadcast(mean, &onehot);
  return SignalBandEnergy(norm, onehot, num_bands, moments);
}

double MeanSignalFrequency(const sparse::CsrMatrix& norm, const Matrix& x) {
  SGNN_CHECK(x.rows() == norm.n(), "MeanSignalFrequency: shape mismatch");
  // <x, L̃ x> = <x, x> - <x, Ã x>.
  Matrix ax(x.rows(), x.cols(), Device::kHost);
  norm.SpMM(x, &ax);
  const double xx = ops::Dot(x, x);
  if (xx <= 0) return 0.0;
  return 1.0 - ops::Dot(x, ax) / xx;
}

double MeanLabelFrequency(const sparse::CsrMatrix& norm,
                          const std::vector<int32_t>& labels,
                          int32_t num_classes) {
  Matrix onehot(norm.n(), num_classes, Device::kHost);
  for (int64_t i = 0; i < norm.n(); ++i) {
    onehot.at(i, labels[static_cast<size_t>(i)]) = 1.0f;
  }
  Matrix mean(1, num_classes, Device::kHost);
  ops::ColumnSum(onehot, &mean);
  ops::Scale(static_cast<float>(-1.0 / static_cast<double>(norm.n())), &mean);
  ops::AddRowBroadcast(mean, &onehot);
  return MeanSignalFrequency(norm, onehot);
}

const char* RecommendFilterFamily(double mean_label_frequency) {
  // Thresholds calibrated on the dataset suite: homophilous counterparts
  // sit near 0.2-0.3, strongly heterophilous ones above 0.75.
  if (mean_label_frequency < 0.45) return "low-pass fixed (PPR/HK/Monomial)";
  if (mean_label_frequency > 0.75) {
    return "high-frequency capable (Horner/Chebyshev/variable)";
  }
  return "adaptive / filter bank (variable or bank filters)";
}

}  // namespace sgnn::eval

#include "eval/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/ops.h"

namespace sgnn::eval {

Result<EigenDecomposition> JacobiEigen(const Matrix& a, double tol,
                                       int max_sweeps) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("JacobiEigen: matrix must be square");
  }
  const int64_t n = a.rows();
  // Work in double precision.
  std::vector<double> m(static_cast<size_t>(n) * n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      m[static_cast<size_t>(i * n + j)] = a.at(i, j);
    }
  }
  std::vector<double> v(static_cast<size_t>(n) * n, 0.0);
  for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i * n + i)] = 1.0;

  auto off_norm = [&]() {
    double s = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        const double x = m[static_cast<size_t>(i * n + j)];
        s += 2.0 * x * x;
      }
    }
    return std::sqrt(s);
  };

  for (int sweep = 0; sweep < max_sweeps && off_norm() > tol; ++sweep) {
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = m[static_cast<size_t>(p * n + q)];
        if (std::fabs(apq) < 1e-15) continue;
        const double app = m[static_cast<size_t>(p * n + p)];
        const double aqq = m[static_cast<size_t>(q * n + q)];
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int64_t k = 0; k < n; ++k) {
          const double mkp = m[static_cast<size_t>(k * n + p)];
          const double mkq = m[static_cast<size_t>(k * n + q)];
          m[static_cast<size_t>(k * n + p)] = c * mkp - s * mkq;
          m[static_cast<size_t>(k * n + q)] = s * mkp + c * mkq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double mpk = m[static_cast<size_t>(p * n + k)];
          const double mqk = m[static_cast<size_t>(q * n + k)];
          m[static_cast<size_t>(p * n + k)] = c * mpk - s * mqk;
          m[static_cast<size_t>(q * n + k)] = s * mpk + c * mqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = v[static_cast<size_t>(k * n + p)];
          const double vkq = v[static_cast<size_t>(k * n + q)];
          v[static_cast<size_t>(k * n + p)] = c * vkp - s * vkq;
          v[static_cast<size_t>(k * n + q)] = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition out;
  out.values.resize(static_cast<size_t>(n));
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) diag[static_cast<size_t>(i)] = m[static_cast<size_t>(i * n + i)];
  std::sort(order.begin(), order.end(),
            [&](int64_t x, int64_t y) { return diag[static_cast<size_t>(x)] < diag[static_cast<size_t>(y)]; });
  out.vectors = Matrix(n, n, Device::kHost);
  for (int64_t i = 0; i < n; ++i) {
    out.values[static_cast<size_t>(i)] = diag[static_cast<size_t>(order[static_cast<size_t>(i)])];
    for (int64_t k = 0; k < n; ++k) {
      out.vectors.at(k, i) = static_cast<float>(
          v[static_cast<size_t>(k * n + order[static_cast<size_t>(i)])]);
    }
  }
  return out;
}

Matrix DenseLaplacian(const sparse::CsrMatrix& norm_adj) {
  const int64_t n = norm_adj.n();
  Matrix lap(n, n, Device::kHost);
  for (int64_t i = 0; i < n; ++i) lap.at(i, i) = 1.0f;
  const auto& indptr = norm_adj.indptr();
  const auto& indices = norm_adj.indices();
  const auto& values = norm_adj.values();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t p = indptr[static_cast<size_t>(i)];
         p < indptr[static_cast<size_t>(i) + 1]; ++p) {
      lap.at(i, indices[static_cast<size_t>(p)]) -= values[static_cast<size_t>(p)];
    }
  }
  return lap;
}

Matrix SpectralApply(const EigenDecomposition& eig,
                     const std::vector<double>& response, const Matrix& x) {
  const int64_t n = eig.vectors.rows();
  SGNN_CHECK(x.rows() == n, "SpectralApply: signal size mismatch");
  SGNN_CHECK(static_cast<int64_t>(response.size()) == n,
             "SpectralApply: response size mismatch");
  // y1 = Uᵀ x; y2 = diag(g) y1; out = U y2.
  Matrix y1(n, x.cols(), Device::kHost);
  ops::GemmTransA(eig.vectors, x, &y1);
  for (int64_t i = 0; i < n; ++i) {
    const auto g = static_cast<float>(response[static_cast<size_t>(i)]);
    float* row = y1.row(i);
    for (int64_t j = 0; j < x.cols(); ++j) row[j] *= g;
  }
  Matrix out(n, x.cols(), Device::kHost);
  ops::Gemm(eig.vectors, y1, &out);
  return out;
}

}  // namespace sgnn::eval

// Embedding analysis utilities: PCA projection and cluster-separability
// metrics (Figure 8's t-SNE substitute, see DESIGN.md).

#ifndef SGNN_EVAL_ANALYSIS_H_
#define SGNN_EVAL_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace sgnn::eval {

/// Projects rows of `x` onto their top `dims` principal components
/// (power iteration with deflation on the covariance).
Matrix PcaProject(const Matrix& x, int dims, Rng* rng, int iters = 50);

/// Mean silhouette coefficient of the labeled embedding, computed on at most
/// `max_samples` points (distance evaluations are O(sample^2)).
double SilhouetteScore(const Matrix& embedding,
                       const std::vector<int32_t>& labels, Rng* rng,
                       int64_t max_samples = 512);

/// Ratio of mean intra-class distance to mean inter-class distance (lower is
/// better separated), sampled like SilhouetteScore.
double IntraInterRatio(const Matrix& embedding,
                       const std::vector<int32_t>& labels, Rng* rng,
                       int64_t max_samples = 512);

}  // namespace sgnn::eval

#endif  // SGNN_EVAL_ANALYSIS_H_

// Hyperparameter grid search (paper Table 4 "Individual" scheme).
//
// The paper searches filter-level hyperparameters (α, β, Jacobi a/b),
// normalization ρ, and learning rates per (model, dataset). This utility
// runs the combinatorial grid with a user-provided evaluation callback and
// returns the configuration with the best validation metric.

#ifndef SGNN_EVAL_TUNING_H_
#define SGNN_EVAL_TUNING_H_

#include <functional>
#include <string>
#include <vector>

#include "core/filter.h"

namespace sgnn::eval {

/// One grid point: filter hyperparameters plus pipeline knobs.
struct TuningPoint {
  filters::FilterHyperParams hp;
  double rho = 0.5;
  double lr_weights = 5e-3;
  double lr_filter = 5e-2;
};

/// Search space; the cross product of all non-empty axes is explored.
/// Empty axes keep the TuningPoint default.
struct TuningGrid {
  std::vector<double> alphas;      ///< hp.alpha
  std::vector<double> betas;       ///< hp.beta
  std::vector<double> rhos;        ///< graph normalization
  std::vector<double> lr_weights;  ///< φ0/φ1 learning rate
  std::vector<double> lr_filters;  ///< θ/γ learning rate
};

/// Result of a grid search.
struct TuningResult {
  TuningPoint best;
  double best_metric = -1.0;
  int evaluated = 0;
};

/// Evaluation callback: returns the validation metric for a grid point.
using TuningEval = std::function<double(const TuningPoint&)>;

/// Exhaustively evaluates the grid; ties keep the earlier point.
TuningResult GridSearch(const TuningGrid& grid, const TuningEval& evaluate);

}  // namespace sgnn::eval

#endif  // SGNN_EVAL_TUNING_H_

// Effectiveness metrics: accuracy, ROC AUC, R², F1 (paper Section 4).

#ifndef SGNN_EVAL_METRICS_H_
#define SGNN_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace sgnn::eval {

/// Fraction of rows in `rows` whose argmax logit equals the label.
double Accuracy(const Matrix& logits, const std::vector<int32_t>& labels,
                const std::vector<int32_t>& rows);

/// Area under the ROC curve for binary problems. `scores` holds one score
/// per selected row (higher = class 1); ties are handled by midrank.
double RocAucFromScores(const std::vector<double>& scores,
                        const std::vector<int32_t>& truth);

/// ROC AUC over the listed rows using the class-1 logit-difference as score.
/// Requires exactly two classes (logits with >= 2 columns).
double RocAuc(const Matrix& logits, const std::vector<int32_t>& labels,
              const std::vector<int32_t>& rows);

/// Coefficient of determination R² between prediction and target columns
/// (flattened across all entries).
double R2Score(const Matrix& pred, const Matrix& target);

/// Macro-averaged F1 over the listed rows.
double MacroF1(const Matrix& logits, const std::vector<int32_t>& labels,
               const std::vector<int32_t>& rows, int32_t num_classes);

/// Mean and (population) standard deviation of a sample.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd Summarize(const std::vector<double>& values);

}  // namespace sgnn::eval

#endif  // SGNN_EVAL_METRICS_H_

#include "eval/tuning.h"

namespace sgnn::eval {

namespace {

/// Axis values, falling back to the single default when empty.
std::vector<double> AxisOrDefault(const std::vector<double>& axis,
                                  double fallback) {
  if (axis.empty()) return {fallback};
  return axis;
}

}  // namespace

TuningResult GridSearch(const TuningGrid& grid, const TuningEval& evaluate) {
  const TuningPoint defaults;
  TuningResult result;
  result.best = defaults;
  for (const double alpha : AxisOrDefault(grid.alphas, defaults.hp.alpha)) {
    for (const double beta : AxisOrDefault(grid.betas, defaults.hp.beta)) {
      for (const double rho : AxisOrDefault(grid.rhos, defaults.rho)) {
        for (const double lrw :
             AxisOrDefault(grid.lr_weights, defaults.lr_weights)) {
          for (const double lrf :
               AxisOrDefault(grid.lr_filters, defaults.lr_filter)) {
            TuningPoint point;
            point.hp.alpha = alpha;
            point.hp.beta = beta;
            point.rho = rho;
            point.lr_weights = lrw;
            point.lr_filter = lrf;
            const double metric = evaluate(point);
            ++result.evaluated;
            if (metric > result.best_metric) {
              result.best_metric = metric;
              result.best = point;
            }
          }
        }
      }
    }
  }
  return result;
}

}  // namespace sgnn::eval

#include "eval/analysis.h"

#include <cmath>
#include <map>

#include "tensor/ops.h"
#include "tensor/status.h"

namespace sgnn::eval {

namespace {

/// Samples up to max_samples row indices without replacement.
std::vector<int64_t> SampleRows(int64_t n, int64_t max_samples, Rng* rng) {
  std::vector<int64_t> rows;
  if (n <= max_samples) {
    rows.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) rows[static_cast<size_t>(i)] = i;
    return rows;
  }
  // Floyd's algorithm-ish: simple reservoir for clarity.
  rows.reserve(static_cast<size_t>(max_samples));
  for (int64_t i = 0; i < n; ++i) {
    if (static_cast<int64_t>(rows.size()) < max_samples) {
      rows.push_back(i);
    } else {
      const auto j = static_cast<int64_t>(
          rng->UniformInt(static_cast<uint64_t>(i + 1)));
      if (j < max_samples) rows[static_cast<size_t>(j)] = i;
    }
  }
  return rows;
}

double RowDistance(const Matrix& x, int64_t a, int64_t b) {
  const float* ra = x.row(a);
  const float* rb = x.row(b);
  double acc = 0.0;
  for (int64_t j = 0; j < x.cols(); ++j) {
    const double d = double(ra[j]) - rb[j];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

Matrix PcaProject(const Matrix& x, int dims, Rng* rng, int iters) {
  const int64_t n = x.rows(), f = x.cols();
  SGNN_CHECK(dims >= 1 && dims <= f, "PcaProject: bad target dimension");
  // Center columns.
  Matrix centered = x;
  Matrix mean(1, f, Device::kHost);
  ops::ColumnSum(centered, &mean);
  ops::Scale(static_cast<float>(-1.0 / static_cast<double>(n)), &mean);
  ops::AddRowBroadcast(mean, &centered);

  Matrix components(dims, f, Device::kHost);
  for (int d = 0; d < dims; ++d) {
    std::vector<double> v(static_cast<size_t>(f));
    for (auto& e : v) e = rng->Normal();
    for (int it = 0; it < iters; ++it) {
      // w = X^T (X v) accumulated in double; then deflate and normalize.
      std::vector<double> xv(static_cast<size_t>(n), 0.0);
      for (int64_t i = 0; i < n; ++i) {
        const float* row = centered.row(i);
        double acc = 0.0;
        for (int64_t j = 0; j < f; ++j) acc += double(row[j]) * v[static_cast<size_t>(j)];
        xv[static_cast<size_t>(i)] = acc;
      }
      std::vector<double> w(static_cast<size_t>(f), 0.0);
      for (int64_t i = 0; i < n; ++i) {
        const float* row = centered.row(i);
        const double s = xv[static_cast<size_t>(i)];
        for (int64_t j = 0; j < f; ++j) w[static_cast<size_t>(j)] += s * row[j];
      }
      // Deflate against previous components.
      for (int p = 0; p < d; ++p) {
        double dot = 0.0;
        for (int64_t j = 0; j < f; ++j) dot += w[static_cast<size_t>(j)] * components.at(p, j);
        for (int64_t j = 0; j < f; ++j) w[static_cast<size_t>(j)] -= dot * components.at(p, j);
      }
      double norm = 0.0;
      for (const double e : w) norm += e * e;
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;
      for (int64_t j = 0; j < f; ++j) v[static_cast<size_t>(j)] = w[static_cast<size_t>(j)] / norm;
    }
    for (int64_t j = 0; j < f; ++j) components.at(d, j) = static_cast<float>(v[static_cast<size_t>(j)]);
  }
  Matrix out(n, dims, Device::kHost);
  ops::GemmTransB(centered, components, &out);
  return out;
}

double SilhouetteScore(const Matrix& embedding,
                       const std::vector<int32_t>& labels, Rng* rng,
                       int64_t max_samples) {
  const auto rows = SampleRows(embedding.rows(), max_samples, rng);
  double total = 0.0;
  int64_t counted = 0;
  for (const int64_t i : rows) {
    const int32_t yi = labels[static_cast<size_t>(i)];
    std::map<int32_t, std::pair<double, int64_t>> by_class;
    for (const int64_t j : rows) {
      if (i == j) continue;
      auto& [sum, cnt] = by_class[labels[static_cast<size_t>(j)]];
      sum += RowDistance(embedding, i, j);
      cnt += 1;
    }
    const auto own = by_class.find(yi);
    if (own == by_class.end() || own->second.second == 0) continue;
    const double a = own->second.first / static_cast<double>(own->second.second);
    double b = 1e300;
    for (const auto& [label, sc] : by_class) {
      if (label == yi || sc.second == 0) continue;
      b = std::min(b, sc.first / static_cast<double>(sc.second));
    }
    if (b >= 1e300) continue;
    const double denom = std::max(a, b);
    if (denom > 0) {
      total += (b - a) / denom;
      ++counted;
    }
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

double IntraInterRatio(const Matrix& embedding,
                       const std::vector<int32_t>& labels, Rng* rng,
                       int64_t max_samples) {
  const auto rows = SampleRows(embedding.rows(), max_samples, rng);
  double intra = 0.0, inter = 0.0;
  int64_t n_intra = 0, n_inter = 0;
  for (size_t a = 0; a < rows.size(); ++a) {
    for (size_t b = a + 1; b < rows.size(); ++b) {
      const double d = RowDistance(embedding, rows[a], rows[b]);
      if (labels[static_cast<size_t>(rows[a])] ==
          labels[static_cast<size_t>(rows[b])]) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  if (n_intra == 0 || n_inter == 0 || inter <= 0.0) return 1.0;
  return (intra / static_cast<double>(n_intra)) /
         (inter / static_cast<double>(n_inter));
}

}  // namespace sgnn::eval

// Graph-spectrum analysis without eigendecomposition.
//
// The paper's practical guideline (C5/RQ6) is to choose filters by
// examining the graph spectrum and where the label signal lives in it.
// This module makes that actionable at scale:
//   * KPM spectral density: the eigenvalue distribution of L̃ estimated by
//     the kernel polynomial method (Chebyshev moments of random probes with
//     Jackson damping) — O(moments · m) time, no eigenvectors.
//   * Signal band energy: how much of a node signal's energy falls into
//     low / mid / high frequency bands, computed with Chebyshev band-pass
//     projectors — the quantity that predicts which filter family fits.

#ifndef SGNN_EVAL_SPECTRUM_H_
#define SGNN_EVAL_SPECTRUM_H_

#include <cstdint>
#include <vector>

#include "sparse/csr.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace sgnn::eval {

/// Configuration for the kernel polynomial method.
struct KpmConfig {
  int moments = 48;     ///< Chebyshev moments (resolution)
  int probes = 8;       ///< random probe vectors (variance)
  int bins = 32;        ///< histogram bins over λ ∈ [0, 2]
  uint64_t seed = 1;
};

/// Estimated eigenvalue density of L̃ = I - Ã over [0, 2]; `density[i]` is
/// the mass in bin i (sums to ~1).
std::vector<double> KpmSpectralDensity(const sparse::CsrMatrix& norm,
                                       const KpmConfig& config);

/// Fraction of signal energy per spectral band. Bands partition [0, 2] into
/// `num_bands` equal intervals; entry b is ||P_b x||² / ||x||² where P_b is
/// a Jackson-damped Chebyshev band projector. Columns of x are averaged.
std::vector<double> SignalBandEnergy(const sparse::CsrMatrix& norm,
                                     const Matrix& x, int num_bands = 4,
                                     int moments = 48);

/// Band energy of the one-hot class-indicator signal (labels spread over
/// columns); the paper's heterophily story in spectral form: homophilous
/// labels concentrate in low bands, heterophilous in high ones.
std::vector<double> LabelBandEnergy(const sparse::CsrMatrix& norm,
                                    const std::vector<int32_t>& labels,
                                    int32_t num_classes, int num_bands = 4,
                                    int moments = 48);

/// Exact mean frequency of a signal: the Rayleigh quotient
/// Σ_f x_fᵀ L̃ x_f / Σ_f x_fᵀ x_f ∈ [0, 2] — one SpMM, no approximation.
double MeanSignalFrequency(const sparse::CsrMatrix& norm, const Matrix& x);

/// Mean frequency of the centered class-indicator signal. Low values mean
/// the labels align with low graph frequencies (homophily); high values the
/// opposite.
double MeanLabelFrequency(const sparse::CsrMatrix& norm,
                          const std::vector<int32_t>& labels,
                          int32_t num_classes);

/// Filter-family recommendation from the mean label frequency, mirroring
/// the paper's guideline text (C5). Returns "low-pass fixed",
/// "high-frequency capable", or "adaptive / filter bank".
const char* RecommendFilterFamily(double mean_label_frequency);

}  // namespace sgnn::eval

#endif  // SGNN_EVAL_SPECTRUM_H_

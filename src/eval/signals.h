// Spectral signal functions for the regression study (paper Table 7).

#ifndef SGNN_EVAL_SIGNALS_H_
#define SGNN_EVAL_SIGNALS_H_

#include <functional>
#include <string>
#include <vector>

namespace sgnn::eval {

/// A named target response ĝ*: [0,2] -> R.
struct SignalFunction {
  std::string name;
  std::function<double(double)> fn;
};

/// The paper's five regression targets:
///   BAND    e^{-10(λ-1)^2}     COMBINE |sin(πλ)|      HIGH 1 - e^{-10λ^2}
///   LOW     e^{-10λ^2}         REJECT  1 - e^{-10(λ-1)^2}
const std::vector<SignalFunction>& RegressionSignals();

}  // namespace sgnn::eval

#endif  // SGNN_EVAL_SIGNALS_H_

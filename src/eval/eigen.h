// Dense symmetric eigendecomposition (cyclic Jacobi rotations).
//
// Used only by the signal-regression study (Table 7) to build exact spectral
// ground truth z = U ĝ*(Λ) Uᵀ x on small graphs — the paper's main pipeline
// never eigendecomposes (that is the point of polynomial filters).

#ifndef SGNN_EVAL_EIGEN_H_
#define SGNN_EVAL_EIGEN_H_

#include <vector>

#include "sparse/csr.h"
#include "tensor/matrix.h"
#include "tensor/status.h"

namespace sgnn::eval {

/// Eigen-decomposition of a dense symmetric matrix.
struct EigenDecomposition {
  std::vector<double> values;  ///< ascending eigenvalues
  Matrix vectors;              ///< column i = eigenvector of values[i]
};

/// Decomposes the dense symmetric matrix `a` (n x n) with the cyclic Jacobi
/// method. Intended for n <= ~2000. `tol` bounds the off-diagonal norm.
[[nodiscard]] Result<EigenDecomposition> JacobiEigen(const Matrix& a, double tol = 1e-9,
                                       int max_sweeps = 64);

/// Densifies the normalized Laplacian L̃ = I - Ã of a sparse Ã.
Matrix DenseLaplacian(const sparse::CsrMatrix& norm_adj);

/// Applies the exact spectral operator U diag(g(λ_i)) Uᵀ x.
Matrix SpectralApply(const EigenDecomposition& eig,
                     const std::vector<double>& response, const Matrix& x);

}  // namespace sgnn::eval

#endif  // SGNN_EVAL_EIGEN_H_

// ASCII table printer for paper-style bench output, plus stage timers.

#ifndef SGNN_EVAL_TABLE_H_
#define SGNN_EVAL_TABLE_H_

#include <chrono>
#include <string>
#include <vector>

namespace sgnn::eval {

/// Column-aligned ASCII table. Rows are added as string cells; Print pads to
/// the widest cell per column.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; missing cells render empty, extras are kept.
  void AddRow(std::vector<std::string> row);

  /// Renders to stdout with a separator under the header.
  void Print() const;

  /// Renders to a string (used by tests).
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats "12.34" style fixed-point values.
std::string Fmt(double value, int precision = 2);

/// Formats "86.58±1.96" effectiveness cells (as in paper Tables 5/10).
std::string FmtMeanStd(double mean, double stddev, int precision = 2);

/// Wall-clock stopwatch in milliseconds.
class Stopwatch {
 public:
  Stopwatch() { Reset(); }
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  /// Elapsed milliseconds since construction / Reset.
  double ElapsedMs() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sgnn::eval

#endif  // SGNN_EVAL_TABLE_H_

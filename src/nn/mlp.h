// Linear layers and MLPs — the paper's transformation operations φ0 / φ1.
//
// Decoupled spectral GNNs wrap the filter as H = φ1(g(L̃) · φ0(X)); under
// mini-batch training φ0 is empty (Table 4) and only φ1 trains on batches.

#ifndef SGNN_NN_MLP_H_
#define SGNN_NN_MLP_H_

#include <vector>

#include "nn/parameter.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace sgnn::nn {

/// A fully connected layer y = xW + b with manual gradients.
class Linear {
 public:
  Linear() = default;
  Linear(int64_t in_dim, int64_t out_dim, Device device = Device::kAccel);

  /// Glorot weight init, zero bias.
  void Init(Rng* rng);

  int64_t in_dim() const { return w_.value().rows(); }
  int64_t out_dim() const { return w_.value().cols(); }

  /// out = x W + b. `out` must be pre-shaped (x.rows, out_dim).
  void Forward(const Matrix& x, Matrix* out) const;

  /// Accumulates dL/dW, dL/db from (x, grad_out); writes dL/dx into grad_in
  /// when non-null. grad_in must be pre-shaped like x.
  void Backward(const Matrix& x, const Matrix& grad_out, Matrix* grad_in);

  void ZeroGrad();
  void AdamStep(const AdamConfig& config, int64_t t);

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }
  const Parameter& weight() const { return w_; }
  const Parameter& bias() const { return b_; }

 private:
  Parameter w_;
  Parameter b_;
};

/// Multi-layer perceptron with ReLU activations and inverted dropout between
/// layers. Layer count 0 yields the identity function.
class Mlp {
 public:
  Mlp() = default;

  /// Builds `num_layers` linear layers mapping in_dim -> hidden ->...-> out_dim.
  /// num_layers == 0 creates an identity module (used for empty φ0 in MB).
  Mlp(int num_layers, int64_t in_dim, int64_t hidden_dim, int64_t out_dim,
      double dropout, Device device = Device::kAccel);

  void Init(Rng* rng);

  bool empty() const { return layers_.empty(); }
  int64_t out_dim(int64_t in_dim) const;

  /// Forward pass. In training mode applies dropout (using `rng`) and caches
  /// activations for Backward. In eval mode (`train` = false) is pure.
  void Forward(const Matrix& x, Matrix* out, bool train, Rng* rng);

  /// Backward through the cached activations of the last training Forward.
  /// Writes dL/dx into grad_in when non-null (pre-shaped like the input).
  void Backward(const Matrix& grad_out, Matrix* grad_in);

  /// No-grad serving forward: no dropout, no activation caching, and const —
  /// it can never invalidate training state. Peak memory is the two live
  /// layer activations instead of the per-layer input/pre-activation/mask
  /// caches a training Forward retains (asserted in tests/serve_test.cc);
  /// this is the pass the inference engine (serve/engine.h) runs per batch.
  /// Numerically identical to Forward(x, out, /*train=*/false, nullptr).
  void ForwardInference(const Matrix& x, Matrix* out) const;

  void ZeroGrad();
  void AdamStep(const AdamConfig& config, int64_t t);

  /// Total scalar count across weights and biases (for model-size reporting).
  int64_t NumParams() const;

  std::vector<Linear>& layers() { return layers_; }
  const std::vector<Linear>& layers() const { return layers_; }
  double dropout() const { return dropout_; }

 private:
  std::vector<Linear> layers_;
  double dropout_ = 0.0;
  Device device_ = Device::kAccel;
  // Training caches: inputs to each layer, pre-activation outputs, dropout masks.
  std::vector<Matrix> inputs_;
  std::vector<Matrix> preacts_;
  std::vector<Matrix> masks_;
};

}  // namespace sgnn::nn

#endif  // SGNN_NN_MLP_H_

// Learnable parameters and the Adam optimizer.
//
// The paper tunes network weights (φ0/φ1) and filter parameters (θ, γ) with
// separate learning rates and weight decays (Table 4); ParamGroup carries
// those per-group hyperparameters.

#ifndef SGNN_NN_PARAMETER_H_
#define SGNN_NN_PARAMETER_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace sgnn::nn {

/// Adam hyperparameters for one parameter group.
struct AdamConfig {
  double lr = 1e-2;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

/// A dense learnable tensor: value, gradient, and Adam moment buffers.
class Parameter {
 public:
  Parameter() = default;

  /// Zero-initialized parameter of the given shape on `device`.
  Parameter(int64_t rows, int64_t cols, Device device = Device::kAccel);

  /// Glorot/Xavier-uniform initialization (fan_in + fan_out scaling).
  void InitGlorot(Rng* rng);

  /// Constant initialization.
  void InitConstant(float value);

  /// Zeroes the gradient buffer.
  void ZeroGrad();

  /// One Adam update with bias correction; `t` is the 1-based step count.
  void AdamStep(const AdamConfig& config, int64_t t);

  Matrix& value() { return value_; }
  const Matrix& value() const { return value_; }
  Matrix& grad() { return grad_; }
  const Matrix& grad() const { return grad_; }

 private:
  Matrix value_;
  Matrix grad_;
  Matrix m_;
  Matrix v_;
};

/// A vector of scalar learnable parameters (filter θ / γ coefficients) with
/// its own Adam state. Kept in double precision: polynomial coefficients are
/// few but numerically sensitive.
class ScalarParams {
 public:
  ScalarParams() = default;
  explicit ScalarParams(std::vector<double> init);

  size_t size() const { return value_.size(); }
  double& operator[](size_t i) { return value_[i]; }
  double operator[](size_t i) const { return value_[i]; }
  std::vector<double>& values() { return value_; }
  const std::vector<double>& values() const { return value_; }
  std::vector<double>& grads() { return grad_; }

  void ZeroGrad();
  void AdamStep(const AdamConfig& config, int64_t t);

  /// Resets values (and clears optimizer state) — used between seeds.
  void Reset(std::vector<double> init);

 private:
  std::vector<double> value_;
  std::vector<double> grad_;
  std::vector<double> m_;
  std::vector<double> v_;
};

}  // namespace sgnn::nn

#endif  // SGNN_NN_PARAMETER_H_

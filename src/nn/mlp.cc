#include "nn/mlp.h"

#include "tensor/ops.h"

namespace sgnn::nn {

Linear::Linear(int64_t in_dim, int64_t out_dim, Device device)
    : w_(in_dim, out_dim, device), b_(1, out_dim, device) {}

void Linear::Init(Rng* rng) {
  w_.InitGlorot(rng);
  b_.InitConstant(0.0f);
}

void Linear::Forward(const Matrix& x, Matrix* out) const {
  ops::Gemm(x, w_.value(), out);
  ops::AddRowBroadcast(b_.value(), out);
}

void Linear::Backward(const Matrix& x, const Matrix& grad_out,
                      Matrix* grad_in) {
  // dW += x^T g ; db += colsum(g) ; dx = g W^T.
  Matrix dw(w_.value().rows(), w_.value().cols(), w_.grad().device());
  ops::GemmTransA(x, grad_out, &dw);
  ops::Axpy(1.0f, dw, &w_.grad());
  Matrix db(1, b_.value().cols(), b_.grad().device());
  ops::ColumnSum(grad_out, &db);
  ops::Axpy(1.0f, db, &b_.grad());
  if (grad_in != nullptr) {
    ops::GemmTransB(grad_out, w_.value(), grad_in);
  }
}

void Linear::ZeroGrad() {
  w_.ZeroGrad();
  b_.ZeroGrad();
}

void Linear::AdamStep(const AdamConfig& config, int64_t t) {
  w_.AdamStep(config, t);
  b_.AdamStep(config, t);
}

Mlp::Mlp(int num_layers, int64_t in_dim, int64_t hidden_dim, int64_t out_dim,
         double dropout, Device device)
    : dropout_(dropout), device_(device) {
  SGNN_CHECK(num_layers >= 0, "Mlp: negative layer count");
  int64_t cur = in_dim;
  for (int i = 0; i < num_layers; ++i) {
    const int64_t next = (i == num_layers - 1) ? out_dim : hidden_dim;
    layers_.emplace_back(cur, next, device);
    cur = next;
  }
}

void Mlp::Init(Rng* rng) {
  for (auto& layer : layers_) layer.Init(rng);
}

int64_t Mlp::out_dim(int64_t in_dim) const {
  return layers_.empty() ? in_dim : layers_.back().out_dim();
}

void Mlp::Forward(const Matrix& x, Matrix* out, bool train, Rng* rng) {
  if (layers_.empty()) {
    *out = x;
    return;
  }
  if (train) {
    inputs_.clear();
    preacts_.clear();
    masks_.clear();
  }
  Matrix cur = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const bool last = (l + 1 == layers_.size());
    Matrix y(cur.rows(), layers_[l].out_dim(), device_);
    layers_[l].Forward(cur, &y);
    if (train) inputs_.push_back(cur);
    if (!last) {
      if (train) {
        preacts_.push_back(y);  // cache pre-activation for ReLU backward
      }
      ops::ReluInPlace(&y);
      // Inverted dropout (train only). The mask draw stays serial: it
      // consumes the run's Rng stream in element order.
      if (train && dropout_ > 0.0) {
        SGNN_CHECK(rng != nullptr, "Mlp: dropout requires rng in train mode");
        Matrix mask(y.rows(), y.cols(), device_);
        const float scale = static_cast<float>(1.0 / (1.0 - dropout_));
        float* md = mask.data();
        for (int64_t i = 0; i < mask.size(); ++i) {
          md[i] = rng->Bernoulli(dropout_) ? 0.0f : scale;
        }
        ops::MulInPlace(mask, &y);
        masks_.push_back(std::move(mask));
      } else if (train) {
        masks_.emplace_back();  // placeholder keeps indices aligned
      }
    }
    cur = std::move(y);
  }
  *out = std::move(cur);
}

void Mlp::ForwardInference(const Matrix& x, Matrix* out) const {
  if (layers_.empty()) {
    *out = x;
    return;
  }
  Matrix cur = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    Matrix y(cur.rows(), layers_[l].out_dim(), device_);
    layers_[l].Forward(cur, &y);
    if (l + 1 != layers_.size()) ops::ReluInPlace(&y);
    cur = std::move(y);
  }
  *out = std::move(cur);
}

void Mlp::Backward(const Matrix& grad_out, Matrix* grad_in) {
  if (layers_.empty()) {
    if (grad_in != nullptr) ops::Copy(grad_out, grad_in);
    return;
  }
  SGNN_CHECK(inputs_.size() == layers_.size(),
             "Mlp: Backward requires a prior training-mode Forward");
  Matrix grad = grad_out;
  for (size_t li = layers_.size(); li-- > 0;) {
    const bool last = (li + 1 == layers_.size());
    if (!last) {
      // Undo dropout then ReLU.
      if (!masks_.empty() && masks_[li].size() > 0) {
        ops::MulInPlace(masks_[li], &grad);
      }
      ops::ReluBackwardInPlace(preacts_[li], &grad);
    }
    Matrix* gin = nullptr;
    Matrix gbuf;
    if (li > 0 || grad_in != nullptr) {
      gbuf = Matrix(inputs_[li].rows(), inputs_[li].cols(), device_);
      gin = &gbuf;
    }
    layers_[li].Backward(inputs_[li], grad, gin);
    if (li == 0) {
      if (grad_in != nullptr) *grad_in = std::move(gbuf);
      break;
    }
    grad = std::move(gbuf);
  }
}

void Mlp::ZeroGrad() {
  for (auto& layer : layers_) layer.ZeroGrad();
}

void Mlp::AdamStep(const AdamConfig& config, int64_t t) {
  for (auto& layer : layers_) layer.AdamStep(config, t);
}

int64_t Mlp::NumParams() const {
  int64_t total = 0;
  for (const auto& layer : layers_) {
    // Const access to parameter shapes via in/out dims.
    total += layer.in_dim() * layer.out_dim() + layer.out_dim();
  }
  return total;
}

}  // namespace sgnn::nn

// Loss functions with analytic gradients.

#ifndef SGNN_NN_LOSS_H_
#define SGNN_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace sgnn::nn {

/// Mean softmax cross-entropy over the rows listed in `rows` (all rows when
/// empty). `labels` holds a class id per logits row. Writes dL/dlogits into
/// `grad` (pre-shaped like logits; rows outside the mask get zero gradient).
/// Returns the mean loss.
double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int32_t>& labels,
                           const std::vector<int32_t>& rows, Matrix* grad);

/// Row-wise softmax probabilities (out pre-shaped like logits).
void Softmax(const Matrix& logits, Matrix* out);

/// Mean binary cross-entropy with logits over a single-column logit matrix.
/// `targets` in {0,1} per selected row. Writes dL/dlogit into `grad`.
double BceWithLogits(const Matrix& logits, const std::vector<float>& targets,
                     Matrix* grad);

/// Mean squared error between prediction and target (same shapes); writes
/// dL/dpred into `grad` when non-null.
double MseLoss(const Matrix& pred, const Matrix& target, Matrix* grad);

}  // namespace sgnn::nn

#endif  // SGNN_NN_LOSS_H_

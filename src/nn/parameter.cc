#include "nn/parameter.h"

#include <cmath>

namespace sgnn::nn {

Parameter::Parameter(int64_t rows, int64_t cols, Device device)
    : value_(rows, cols, device),
      grad_(rows, cols, device),
      m_(rows, cols, device),
      v_(rows, cols, device) {}

void Parameter::InitGlorot(Rng* rng) {
  const double bound =
      std::sqrt(6.0 / static_cast<double>(value_.rows() + value_.cols()));
  value_.FillUniform(rng, static_cast<float>(-bound),
                     static_cast<float>(bound));
}

void Parameter::InitConstant(float value) { value_.Fill(value); }

void Parameter::ZeroGrad() { grad_.Fill(0.0f); }

void Parameter::AdamStep(const AdamConfig& config, int64_t t) {
  float* w = value_.data();
  float* g = grad_.data();
  float* m = m_.data();
  float* v = v_.data();
  const double bc1 = 1.0 - std::pow(config.beta1, static_cast<double>(t));
  const double bc2 = 1.0 - std::pow(config.beta2, static_cast<double>(t));
  for (int64_t i = 0; i < value_.size(); ++i) {
    // Decoupled weight decay (AdamW): decay applies to the weight directly.
    const double grad = static_cast<double>(g[i]);
    const double mi = config.beta1 * m[i] + (1.0 - config.beta1) * grad;
    const double vi = config.beta2 * v[i] + (1.0 - config.beta2) * grad * grad;
    m[i] = static_cast<float>(mi);
    v[i] = static_cast<float>(vi);
    const double mhat = mi / bc1;
    const double vhat = vi / bc2;
    double wi = static_cast<double>(w[i]);
    wi -= config.lr * (mhat / (std::sqrt(vhat) + config.eps) +
                       config.weight_decay * wi);
    w[i] = static_cast<float>(wi);
  }
}

ScalarParams::ScalarParams(std::vector<double> init)
    : value_(std::move(init)),
      grad_(value_.size(), 0.0),
      m_(value_.size(), 0.0),
      v_(value_.size(), 0.0) {}

void ScalarParams::ZeroGrad() { std::fill(grad_.begin(), grad_.end(), 0.0); }

void ScalarParams::AdamStep(const AdamConfig& config, int64_t t) {
  const double bc1 = 1.0 - std::pow(config.beta1, static_cast<double>(t));
  const double bc2 = 1.0 - std::pow(config.beta2, static_cast<double>(t));
  for (size_t i = 0; i < value_.size(); ++i) {
    const double grad = grad_[i];
    m_[i] = config.beta1 * m_[i] + (1.0 - config.beta1) * grad;
    v_[i] = config.beta2 * v_[i] + (1.0 - config.beta2) * grad * grad;
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    value_[i] -= config.lr * (mhat / (std::sqrt(vhat) + config.eps) +
                              config.weight_decay * value_[i]);
  }
}

void ScalarParams::Reset(std::vector<double> init) {
  value_ = std::move(init);
  grad_.assign(value_.size(), 0.0);
  m_.assign(value_.size(), 0.0);
  v_.assign(value_.size(), 0.0);
}

}  // namespace sgnn::nn

#include "nn/loss.h"

#include <cmath>

#include "tensor/status.h"

namespace sgnn::nn {

double SoftmaxCrossEntropy(const Matrix& logits,
                           const std::vector<int32_t>& labels,
                           const std::vector<int32_t>& rows, Matrix* grad) {
  SGNN_CHECK(grad->rows() == logits.rows() && grad->cols() == logits.cols(),
             "SoftmaxCrossEntropy: grad shape mismatch");
  grad->Fill(0.0f);
  std::vector<int32_t> all;
  const std::vector<int32_t>* sel = &rows;
  if (rows.empty()) {
    all.resize(static_cast<size_t>(logits.rows()));
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int32_t>(i);
    sel = &all;
  }
  const int64_t c = logits.cols();
  const double inv_n = 1.0 / static_cast<double>(sel->size());
  double loss = 0.0;
  for (const int32_t r : *sel) {
    const float* lrow = logits.row(r);
    float* grow = grad->row(r);
    const int32_t y = labels[static_cast<size_t>(r)];
    SGNN_CHECK(y >= 0 && y < c, "SoftmaxCrossEntropy: label out of range");
    double maxv = lrow[0];
    for (int64_t j = 1; j < c; ++j) maxv = std::max<double>(maxv, lrow[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) denom += std::exp(lrow[j] - maxv);
    const double log_denom = std::log(denom) + maxv;
    loss += log_denom - lrow[y];
    for (int64_t j = 0; j < c; ++j) {
      const double p = std::exp(lrow[j] - log_denom);
      grow[j] = static_cast<float>(inv_n * (p - (j == y ? 1.0 : 0.0)));
    }
  }
  return loss * inv_n;
}

void Softmax(const Matrix& logits, Matrix* out) {
  SGNN_CHECK(out->rows() == logits.rows() && out->cols() == logits.cols(),
             "Softmax: output shape mismatch");
  const int64_t c = logits.cols();
  for (int64_t i = 0; i < logits.rows(); ++i) {
    const float* lrow = logits.row(i);
    float* orow = out->row(i);
    double maxv = lrow[0];
    for (int64_t j = 1; j < c; ++j) maxv = std::max<double>(maxv, lrow[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      orow[j] = static_cast<float>(std::exp(lrow[j] - maxv));
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < c; ++j) orow[j] *= inv;
  }
}

double BceWithLogits(const Matrix& logits, const std::vector<float>& targets,
                     Matrix* grad) {
  SGNN_CHECK(logits.cols() == 1, "BceWithLogits: expected a single column");
  SGNN_CHECK(static_cast<int64_t>(targets.size()) == logits.rows(),
             "BceWithLogits: target count mismatch");
  SGNN_CHECK(grad->rows() == logits.rows() && grad->cols() == 1,
             "BceWithLogits: grad shape mismatch");
  const double inv_n = 1.0 / static_cast<double>(logits.rows());
  double loss = 0.0;
  for (int64_t i = 0; i < logits.rows(); ++i) {
    const double z = logits.at(i, 0);
    const double y = targets[static_cast<size_t>(i)];
    // Numerically stable: max(z,0) - z*y + log(1 + exp(-|z|)).
    loss += std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::fabs(z)));
    const double sigmoid = 1.0 / (1.0 + std::exp(-z));
    grad->at(i, 0) = static_cast<float>(inv_n * (sigmoid - y));
  }
  return loss * inv_n;
}

double MseLoss(const Matrix& pred, const Matrix& target, Matrix* grad) {
  SGNN_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols(),
             "MseLoss: shape mismatch");
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  double loss = 0.0;
  for (int64_t i = 0; i < pred.rows(); ++i) {
    const float* prow = pred.row(i);
    const float* trow = target.row(i);
    for (int64_t j = 0; j < pred.cols(); ++j) {
      const double d = double(prow[j]) - trow[j];
      loss += d * d;
      if (grad != nullptr) {
        grad->at(i, j) = static_cast<float>(2.0 * inv_n * d);
      }
    }
  }
  return loss * inv_n;
}

}  // namespace sgnn::nn

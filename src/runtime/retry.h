// Client-side retry with seeded, jittered exponential backoff.
//
// The serving engine sheds load with a typed kUnavailable when admission
// control trips (docs/SERVING.md, "Overload semantics"). kUnavailable is the
// *only* retryable code in the taxonomy: it means "correct request, bad
// moment" — backing off and retrying is how a well-behaved client converts a
// burst into goodput instead of a retry storm. Every other code (bad node
// id, stopped engine, missed deadline) is terminal and returned immediately.
//
// Backoff delays are drawn from a caller-owned seeded Rng, so a load
// generator's retry schedule replays bit-identically run to run; only the
// actual sleeping reads the wall clock. An overall deadline bounds the total
// attempt+sleep budget: when it expires the last kUnavailable is returned
// unchanged (the caller sees *why* it gave up, not a synthetic timeout).

#ifndef SGNN_RUNTIME_RETRY_H_
#define SGNN_RUNTIME_RETRY_H_

#include <functional>

#include "tensor/rng.h"
#include "tensor/status.h"

namespace sgnn::runtime {

/// Backoff policy knobs.
struct BackoffConfig {
  int max_attempts = 5;        ///< total tries, including the first (>= 1)
  double initial_delay_ms = 0.5;  ///< sleep before the second attempt
  double multiplier = 2.0;        ///< delay growth per retry (>= 1)
  double max_delay_ms = 50.0;     ///< per-sleep ceiling
  /// Uniform jitter fraction: each sleep is scaled by a seeded draw from
  /// [1 - jitter, 1 + jitter]. 0 disables jitter (exact exponential).
  double jitter = 0.25;
  /// Overall wall-clock budget across all attempts and sleeps; attempts
  /// whose next backoff sleep would overrun it are not made. <= 0 disables.
  double deadline_ms = 0.0;
};

/// What the retry loop did — for goodput accounting in the load generator.
struct RetryStats {
  int attempts = 0;       ///< operations actually invoked
  double slept_ms = 0.0;  ///< total backoff sleep (scheduled, seeded)
};

/// Invokes `op` until it returns anything other than kUnavailable, up to
/// `config.max_attempts` tries, sleeping a jittered exponential backoff
/// between attempts. Returns the first non-kUnavailable status (OK or a
/// terminal error), or the last kUnavailable when attempts or the overall
/// deadline run out. `rng` drives the jitter and must outlive the call;
/// `stats` (optional) reports attempts and total scheduled sleep.
[[nodiscard]] Status RetryWithBackoff(const std::function<Status()>& op,
                                      const BackoffConfig& config, Rng* rng,
                                      RetryStats* stats = nullptr);

/// The delay (ms) scheduled before retry number `retry` (1-based), jittered
/// by `rng`. Exposed so tests can assert the schedule without sleeping.
double BackoffDelayMs(const BackoffConfig& config, int retry, Rng* rng);

}  // namespace sgnn::runtime

#endif  // SGNN_RUNTIME_RETRY_H_

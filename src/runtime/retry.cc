#include "runtime/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "eval/table.h"

namespace sgnn::runtime {

double BackoffDelayMs(const BackoffConfig& config, int retry, Rng* rng) {
  double delay = config.initial_delay_ms;
  for (int i = 1; i < retry; ++i) {
    delay *= std::max(1.0, config.multiplier);
    if (delay >= config.max_delay_ms) break;
  }
  delay = std::min(delay, config.max_delay_ms);
  if (config.jitter > 0.0 && rng != nullptr) {
    delay *= rng->Uniform(1.0 - config.jitter, 1.0 + config.jitter);
  }
  return std::max(0.0, delay);
}

Status RetryWithBackoff(const std::function<Status()>& op,
                        const BackoffConfig& config, Rng* rng,
                        RetryStats* stats) {
  const int max_attempts = std::max(1, config.max_attempts);
  eval::Stopwatch budget;
  RetryStats local;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    ++local.attempts;
    last = op();
    if (last.code() != StatusCode::kUnavailable) break;
    if (attempt == max_attempts) break;
    const double delay = BackoffDelayMs(config, attempt, rng);
    // Honor the overall deadline: never start a sleep that would overrun
    // it, and give up when the budget is already spent.
    if (config.deadline_ms > 0.0 &&
        budget.ElapsedMs() + delay > config.deadline_ms) {
      break;
    }
    local.slept_ms += delay;
    if (delay > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay));
    }
  }
  if (stats != nullptr) *stats = local;
  return last;
}

}  // namespace sgnn::runtime

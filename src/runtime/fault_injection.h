// Deterministic fault injection for the simulated device and graph IO.
//
// The paper's tables contain cells that legitimately fail — "(OOM)" in
// Tables 9/11 — but real capacity is the only way the seed harness could
// reach those paths. This layer hooks DeviceTracker::OnAlloc and
// graph::io Save/Load so OOM and IO-error handling is testable on demand:
// faults are scripted (fail exactly the Nth operation) or probabilistic
// (seeded, so a plan replays identically), and never terminate the process
// — they surface as the same latched-OOM flag / Status values the organic
// failures produce.

#ifndef SGNN_RUNTIME_FAULT_INJECTION_H_
#define SGNN_RUNTIME_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "core/thread_annotations.h"
#include "tensor/rng.h"
#include "tensor/status.h"

namespace sgnn::runtime {

/// What to break, and when. All counters are 1-based and count operations
/// observed since Arm(); 0 disables the corresponding fault.
struct FaultPlan {
  /// Fail exactly the Nth accelerator allocation (one-shot).
  uint64_t accel_alloc_fail_nth = 0;
  /// Fail each accelerator allocation independently with this probability.
  double accel_alloc_fail_prob = 0.0;
  /// Fail exactly the Nth graph IO operation (one-shot).
  uint64_t io_fail_nth = 0;
  /// Fail each graph IO operation independently with this probability.
  double io_fail_prob = 0.0;
  /// Seed for the probabilistic draws; same plan + seed => same faults.
  uint64_t seed = 1;
};

/// Parses "accel_nth=120,accel_prob=0.01,io_nth=3,io_prob=0.1,seed=7".
/// Unknown keys are rejected. Used by SPECTRAL_FAULT_PLAN.
[[nodiscard]] Result<FaultPlan> ParseFaultPlan(const std::string& text);

/// Process-wide injector. Arm() installs the DeviceTracker and graph::io
/// hooks; Disarm() removes them. Thread-safe.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Installs the hooks and resets counters. Re-arming replaces the plan.
  void Arm(const FaultPlan& plan);

  /// Arms from the SPECTRAL_FAULT_PLAN environment variable. Returns true
  /// when a plan was found and armed; malformed plans are reported on
  /// stderr and ignored (a bad env var must not kill a bench).
  bool ArmFromEnv();

  /// Uninstalls both hooks.
  void Disarm();

  bool armed() const;

  /// Operations observed / faults injected since the last Arm().
  uint64_t observed_accel_allocs() const;
  uint64_t observed_io_ops() const;
  uint64_t injected_alloc_faults() const;
  uint64_t injected_io_faults() const;

 private:
  FaultInjector() = default;

  bool OnAccelAlloc();
  [[nodiscard]] Status OnIo(const char* op, const std::string& path);

  mutable std::mutex mu_;
  bool armed_ SGNN_GUARDED_BY(mu_) = false;
  FaultPlan plan_ SGNN_GUARDED_BY(mu_);
  Rng rng_ SGNN_GUARDED_BY(mu_){1};
  uint64_t accel_allocs_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t io_ops_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t alloc_faults_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t io_faults_ SGNN_GUARDED_BY(mu_) = 0;
};

}  // namespace sgnn::runtime

#endif  // SGNN_RUNTIME_FAULT_INJECTION_H_

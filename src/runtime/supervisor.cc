#include "runtime/supervisor.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "tensor/parallel.h"
#include "eval/table.h"
#include "tensor/device.h"

namespace sgnn::runtime {

std::string DefaultJournalPath(const std::string& bench_name) {
  const char* dir = std::getenv("SPECTRAL_JOURNAL_DIR");
  if (dir == nullptr || dir[0] == '\0') return "";
  return std::string(dir) + "/" + bench_name + ".jsonl";
}

Supervisor::Supervisor(std::string bench_name, std::string journal_path)
    : bench_(std::move(bench_name)) {
  if (journal_path.empty()) journal_path = DefaultJournalPath(bench_);
  journal_ = std::make_unique<Journal>(std::move(journal_path));
  if (journal_->enabled() && journal_->replayed() > 0) {
    std::printf("[%s] journal %s: %zu completed cell(s) will be skipped\n",
                bench_.c_str(), journal_->path().c_str(),
                journal_->replayed());
  }
}

const CellRecord* Supervisor::Find(const CellKey& key) const {
  return journal_->Find(key);
}

CellRecord Supervisor::Skip(const CellKey& key, CellStatus status,
                            std::string detail) {
  CellRecord record;
  record.key = key;
  record.status = status;
  record.detail = std::move(detail);
  record.final_scheme = key.scheme;
  // Skips never ran a trainer, so stamp the thread count here; every
  // journal row then carries it (bench rows are comparable across
  // SGNN_NUM_THREADS settings).
  record.stats.threads = parallel::NumThreads();
  journal_->Append(bench_, record);
  return record;
}

void Supervisor::FillFromResult(const models::TrainResult& result,
                                CellRecord* record) {
  record->val_metric = result.val_metric;
  record->test_metric = result.test_metric;
  record->train_loss = result.final_train_loss;
  record->stats = result.stats;
  if (result.oom) {
    record->status = CellStatus::kOom;
  } else if (result.timed_out) {
    record->status = CellStatus::kTimeout;
  } else if (result.diverged) {
    record->status = CellStatus::kDiverged;
  } else if (!result.status.ok()) {
    if (result.status.code() == StatusCode::kInvalidArgument) {
      record->status = CellStatus::kSkipped;
    } else if (result.status.code() == StatusCode::kUnavailable) {
      // A serving cell whose load was entirely shed by admission control:
      // journaled as SHED so overload sweeps keep the row (and its shed
      // counters in extras) the way efficiency tables keep "(OOM)" rows.
      record->status = CellStatus::kShed;
    } else {
      record->status = CellStatus::kFailed;
    }
  } else {
    record->status = CellStatus::kOk;
  }
  if (!result.status.ok()) record->detail = result.status.ToString();
}

void Supervisor::JournalShardSpills(const CellRecord& record) {
  if (record.status != CellStatus::kOk || record.stats.shard_spills <= 0) {
    return;
  }
  CellRecord spill = record;
  spill.terminal = false;  // companion line; the OK record owns resume
  spill.status = CellStatus::kShardSpill;
  spill.detail = std::to_string(record.stats.shard_spills) +
                 " shard hop(s) exceeded the per-shard accelerator "
                 "sub-budget and ran host-side";
  journal_->Append(bench_, spill);
}

CellRecord Supervisor::Run(const CellKey& key, const RunFn& body,
                           const PostFn& post) {
  if (const CellRecord* done = Find(key)) {
    ++resumed_;
    return *done;
  }
  CellRecord record;
  record.key = key;
  record.final_scheme = key.scheme;
  eval::Stopwatch sw;
  const models::TrainResult result = body();
  record.wall_ms = sw.ElapsedMs();
  FillFromResult(result, &record);
  if (post && record.ok()) post(result, &record);
  JournalShardSpills(record);
  journal_->Append(bench_, record);
  return record;
}

CellRecord Supervisor::RunTraining(const CellKey& key, const graph::Graph& g,
                                   const graph::Splits& splits,
                                   graph::Metric metric,
                                   const models::TrainConfig& config,
                                   const RunOptions& options,
                                   const PostFn& post) {
  if (const CellRecord* done = Find(key)) {
    ++resumed_;
    return *done;
  }
  auto make_filter = [&]() {
    return filters::CreateFilter(key.filter, options.hops, options.hp,
                                 g.features.cols());
  };
  auto filter_or = make_filter();
  if (!filter_or.ok()) {
    return Skip(key, CellStatus::kSkipped, filter_or.status().ToString());
  }
  auto filter = filter_or.MoveValue();

  const bool want_mb = key.scheme == "mb";
  if (want_mb && !filter->SupportsMiniBatch()) {
    return Skip(key, CellStatus::kSkipped,
                "filter " + key.filter + " is full-batch only");
  }

  CellRecord record;
  record.key = key;
  record.final_scheme = key.scheme;
  eval::Stopwatch sw;
  models::TrainResult result;
  if (want_mb) {
    models::TrainConfig mb_config = config;
    mb_config.phi0_layers = 0;
    if (mb_config.phi1_layers < 2) mb_config.phi1_layers = 2;
    result = models::TrainMiniBatch(g, splits, metric, filter.get(),
                                    mb_config);
  } else {
    result = models::TrainFullBatch(g, splits, metric, filter.get(), config);
    // Journals the failed FB attempt (non-terminal) before a degradation
    // retry, so the ladder is visible in the journal.
    auto journal_attempt = [&](const char* scheme) {
      CellRecord attempt;
      attempt.key = key;
      attempt.terminal = false;
      attempt.final_scheme = scheme;
      attempt.wall_ms = sw.ElapsedMs();
      FillFromResult(result, &attempt);
      journal_->Append(bench_, attempt);
    };
    if (result.oom && options.fallback_shards > 1 && config.num_shards <= 1) {
      // First degradation rung (docs/SHARDING.md): keep the FB scheme but
      // shard propagation — graph and representations host-resident, shard
      // working sets streamed through the accelerator under sub-budgets.
      journal_attempt("fb");
      DeviceTracker::Global().ClearOom();
      auto retry_or = make_filter();
      if (retry_or.ok()) {
        auto retry_filter = retry_or.MoveValue();
        models::TrainConfig shard_config = config;
        shard_config.num_shards = options.fallback_shards;
        result = models::TrainFullBatch(g, splits, metric, retry_filter.get(),
                                        shard_config);
        record.fell_back = true;
        record.final_scheme = "fb-sharded";
        ++record.attempts;
      }
    }
    if (result.oom && options.fallback_to_mb && filter->SupportsMiniBatch()) {
      // Degrade to the decoupled mini-batch scheme on a fresh filter.
      journal_attempt(record.final_scheme == "fb-sharded" ? "fb-sharded"
                                                          : "fb");
      DeviceTracker::Global().ClearOom();
      auto retry_or = make_filter();
      if (retry_or.ok()) {
        auto retry_filter = retry_or.MoveValue();
        models::TrainConfig mb_config = config;
        mb_config.phi0_layers = 0;
        if (mb_config.phi1_layers < 2) mb_config.phi1_layers = 2;
        result = models::TrainMiniBatch(g, splits, metric,
                                        retry_filter.get(), mb_config);
        record.fell_back = true;
        record.final_scheme = "mb";
        ++record.attempts;
      }
    }
  }
  record.wall_ms = sw.ElapsedMs();
  FillFromResult(result, &record);
  if (post && record.ok()) post(result, &record);
  JournalShardSpills(record);
  journal_->Append(bench_, record);
  return record;
}

}  // namespace sgnn::runtime

// Supervised cell runner: every training/bench run becomes a recoverable
// unit of a grid.
//
// A Supervisor owns one bench's journal and runs cells under the trainer's
// run guards. A cell that fails — simulated OOM, NaN divergence, deadline
// timeout, bad filter name, IO error — is recorded with a terminal status
// instead of killing the grid, exactly as the paper's tables keep "(OOM)"
// rows. On a simulated accelerator OOM in a full-batch cell the supervisor
// can retry with the decoupled mini-batch scheme (the paper's own Section 6
// recommendation) and records the fallback. Re-running a bench with the
// same journal skips cells that already reached a terminal state, and the
// replayed records rebuild the same table.
//
// Journaling is enabled by SPECTRAL_JOURNAL_DIR (one <bench>.jsonl file per
// bench binary) or an explicit path; without either, supervision still
// applies but nothing persists.

#ifndef SGNN_RUNTIME_SUPERVISOR_H_
#define SGNN_RUNTIME_SUPERVISOR_H_

#include <functional>
#include <memory>
#include <string>

#include "core/registry.h"
#include "graph/datasets.h"
#include "models/trainer.h"
#include "runtime/journal.h"

namespace sgnn::runtime {

/// Per-cell policy knobs.
struct RunOptions {
  /// Retry a full-batch accelerator OOM with the mini-batch scheme when the
  /// filter supports it. Efficiency benches that *report* OOM cells turn
  /// this off; effectiveness grids keep it on to salvage a number.
  bool fallback_to_mb = true;
  /// When > 1, retry a full-batch accelerator OOM sharded at this shard
  /// count before (or instead of) the MB fallback: same scheme, graph and
  /// representations host-resident, per-shard working sets streamed through
  /// the accelerator under sub-budgets (docs/SHARDING.md). This upgrades
  /// the degradation ladder from accel-OOM → MB-fallback to accel-OOM →
  /// shard-spill; sub-budget overruns are journaled as SHARD_SPILL cells.
  int fallback_shards = 0;
  /// Filter hyperparameters for RunTraining's filter construction.
  filters::FilterHyperParams hp;
  /// Hop count for RunTraining's filter construction.
  int hops = 10;
};

/// Invoked after a successful live run so benches can journal derived
/// scalars (CellRecord::extras) that resumed cells need for table rows.
using PostFn = std::function<void(const models::TrainResult&, CellRecord*)>;

/// The supervised body of a generic cell.
using RunFn = std::function<models::TrainResult()>;

class Supervisor {
 public:
  /// `journal_path` overrides the SPECTRAL_JOURNAL_DIR-derived default;
  /// pass exactly "" to use the environment (or disable when unset).
  explicit Supervisor(std::string bench_name, std::string journal_path = "");

  /// Completed-cell lookup, for skipping expensive setup (dataset
  /// generation) on resume. Returns nullptr when the cell must run.
  const CellRecord* Find(const CellKey& key) const;

  /// Runs `body` under supervision unless the journal already has a
  /// terminal record for `key`. The body's TrainResult flags decide the
  /// cell status; `post` (optional) fills record extras on live success.
  CellRecord Run(const CellKey& key, const RunFn& body,
                 const PostFn& post = nullptr);

  /// Full policy for the standard FB/MB grids: creates the filter named by
  /// `key.filter` (a bad name records SKIPPED instead of exiting), trains
  /// with the scheme in `key.scheme` ("fb" or "mb"), and applies the FB→MB
  /// OOM degradation when enabled. `post` as in Run.
  CellRecord RunTraining(const CellKey& key, const graph::Graph& g,
                         const graph::Splits& splits, graph::Metric metric,
                         const models::TrainConfig& config,
                         const RunOptions& options = {},
                         const PostFn& post = nullptr);

  /// Records a cell that never ran (bad filter name, unsupported scheme,
  /// ...) with a terminal status and the human-readable reason. Public so
  /// bench-side probes can journal *why* a cell is absent instead of
  /// silently dropping the error.
  CellRecord Skip(const CellKey& key, CellStatus status, std::string detail);

  /// Cells served from the journal instead of running, this process.
  size_t resumed_cells() const { return resumed_; }

  const std::string& bench_name() const { return bench_; }
  bool journaling() const { return journal_->enabled(); }

 private:
  static void FillFromResult(const models::TrainResult& result,
                             CellRecord* record);

  /// Appends the non-terminal SHARD_SPILL companion record for an OK cell
  /// whose sharded run spilled shard working sets host-side. The OK record
  /// stays the terminal one, so resume semantics are unchanged; the spill
  /// line makes the degradation auditable per cell.
  void JournalShardSpills(const CellRecord& record);

  std::string bench_;
  std::unique_ptr<Journal> journal_;
  size_t resumed_ = 0;
};

/// "$SPECTRAL_JOURNAL_DIR/<bench>.jsonl", or "" when the env var is unset.
std::string DefaultJournalPath(const std::string& bench_name);

}  // namespace sgnn::runtime

#endif  // SGNN_RUNTIME_SUPERVISOR_H_

#include "runtime/journal.h"

#include <cctype>
#include <cstdlib>
#include <filesystem>

namespace sgnn::runtime {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal parser for the flat (depth-1) JSON objects this journal writes.
/// Unknown keys are kept, nested values rejected — the format is ours.
class FlatParser {
 public:
  bool Parse(const std::string& line) {
    size_t i = 0;
    SkipWs(line, &i);
    if (i >= line.size() || line[i] != '{') return false;
    ++i;
    SkipWs(line, &i);
    if (i < line.size() && line[i] == '}') return true;  // empty object
    while (i < line.size()) {
      std::string key;
      if (!ParseString(line, &i, &key)) return false;
      SkipWs(line, &i);
      if (i >= line.size() || line[i] != ':') return false;
      ++i;
      SkipWs(line, &i);
      if (i < line.size() && line[i] == '"') {
        std::string value;
        if (!ParseString(line, &i, &value)) return false;
        strings_[key] = value;
      } else {
        const size_t start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
        std::string token = line.substr(start, i - start);
        while (!token.empty() && std::isspace(
                   static_cast<unsigned char>(token.back()))) {
          token.pop_back();
        }
        if (token.empty() || token.front() == '{' || token.front() == '[') {
          return false;
        }
        scalars_[key] = token;
      }
      SkipWs(line, &i);
      if (i >= line.size()) return false;
      if (line[i] == '}') return true;
      if (line[i] != ',') return false;
      ++i;
      SkipWs(line, &i);
    }
    return false;
  }

  const std::string* GetString(const std::string& key) const {
    const auto it = strings_.find(key);
    return it == strings_.end() ? nullptr : &it->second;
  }

  bool GetDouble(const std::string& key, double* out) const {
    const auto it = scalars_.find(key);
    if (it == scalars_.end()) return false;
    *out = std::atof(it->second.c_str());
    return true;
  }

  bool GetBool(const std::string& key, bool* out) const {
    const auto it = scalars_.find(key);
    if (it == scalars_.end()) return false;
    *out = it->second == "true";
    return true;
  }

  const std::map<std::string, std::string>& scalars() const {
    return scalars_;
  }

 private:
  static void SkipWs(const std::string& s, size_t* i) {
    while (*i < s.size() && std::isspace(static_cast<unsigned char>(s[*i]))) {
      ++*i;
    }
  }

  static bool ParseString(const std::string& s, size_t* i, std::string* out) {
    if (*i >= s.size() || s[*i] != '"') return false;
    ++*i;
    out->clear();
    while (*i < s.size()) {
      const char c = s[*i];
      if (c == '"') {
        ++*i;
        return true;
      }
      if (c == '\\') {
        ++*i;
        if (*i >= s.size()) return false;
        switch (s[*i]) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (*i + 4 >= s.size()) return false;
            const long code = std::strtol(s.substr(*i + 1, 4).c_str(),
                                          nullptr, 16);
            out->push_back(static_cast<char>(code));
            *i += 4;
            break;
          }
          default: return false;
        }
        ++*i;
      } else {
        out->push_back(c);
        ++*i;
      }
    }
    return false;
  }

  std::map<std::string, std::string> strings_;
  std::map<std::string, std::string> scalars_;
};

}  // namespace

const char* CellStatusName(CellStatus status) {
  switch (status) {
    case CellStatus::kOk: return "OK";
    case CellStatus::kOom: return "OOM";
    case CellStatus::kTimeout: return "TIMEOUT";
    case CellStatus::kDiverged: return "DIVERGED";
    case CellStatus::kSkipped: return "SKIPPED";
    case CellStatus::kFailed: return "FAILED";
    case CellStatus::kShed: return "SHED";
    case CellStatus::kShardSpill: return "SHARD_SPILL";
  }
  return "FAILED";
}

CellStatus CellStatusFromName(const std::string& name) {
  if (name == "OK") return CellStatus::kOk;
  if (name == "OOM") return CellStatus::kOom;
  if (name == "TIMEOUT") return CellStatus::kTimeout;
  if (name == "DIVERGED") return CellStatus::kDiverged;
  if (name == "SKIPPED") return CellStatus::kSkipped;
  if (name == "SHED") return CellStatus::kShed;
  if (name == "SHARD_SPILL") return CellStatus::kShardSpill;
  return CellStatus::kFailed;
}

std::string CellKey::Id() const {
  return dataset + "/" + filter + "/" + scheme + "/" + std::to_string(seed) +
         "/" + variant;
}

double CellRecord::Extra(const std::string& name, double fallback) const {
  for (const auto& [key, value] : extras) {
    if (key == name) return value;
  }
  return fallback;
}

std::string EncodeRecord(const std::string& bench, const CellRecord& record) {
  std::string out = "{\"bench\":";
  AppendEscaped(bench, &out);
  out += ",\"dataset\":";
  AppendEscaped(record.key.dataset, &out);
  out += ",\"filter\":";
  AppendEscaped(record.key.filter, &out);
  out += ",\"scheme\":";
  AppendEscaped(record.key.scheme, &out);
  out += ",\"seed\":" + std::to_string(record.key.seed);
  out += ",\"variant\":";
  AppendEscaped(record.key.variant, &out);
  out += ",\"terminal\":";
  out += record.terminal ? "true" : "false";
  out += ",\"status\":";
  AppendEscaped(CellStatusName(record.status), &out);
  out += ",\"final_scheme\":";
  AppendEscaped(record.final_scheme, &out);
  out += ",\"fell_back\":";
  out += record.fell_back ? "true" : "false";
  out += ",\"attempts\":" + std::to_string(record.attempts);
  out += ",\"detail\":";
  AppendEscaped(record.detail, &out);
  out += ",\"val\":" + FmtDouble(record.val_metric);
  out += ",\"test\":" + FmtDouble(record.test_metric);
  out += ",\"loss\":" + FmtDouble(record.train_loss);
  out += ",\"pre_ms\":" + FmtDouble(record.stats.precompute_ms);
  out += ",\"train_ms\":" + FmtDouble(record.stats.train_ms_per_epoch);
  out += ",\"infer_ms\":" + FmtDouble(record.stats.infer_ms);
  out += ",\"ram_bytes\":" + std::to_string(record.stats.peak_ram_bytes);
  out += ",\"accel_bytes\":" + std::to_string(record.stats.peak_accel_bytes);
  out += ",\"threads\":" + std::to_string(record.stats.threads);
  out += ",\"shards\":" + std::to_string(record.stats.shards);
  out += ",\"shard_spills\":" + std::to_string(record.stats.shard_spills);
  out += ",\"wall_ms\":" + FmtDouble(record.wall_ms);
  for (const auto& [name, value] : record.extras) {
    out += ",";
    AppendEscaped("x_" + name, &out);
    out += ":" + FmtDouble(value);
  }
  out += "}";
  return out;
}

Result<CellRecord> DecodeRecord(const std::string& line) {
  FlatParser parser;
  if (!parser.Parse(line)) {
    return Status::InvalidArgument("malformed journal line");
  }
  const std::string* dataset = parser.GetString("dataset");
  const std::string* filter = parser.GetString("filter");
  const std::string* scheme = parser.GetString("scheme");
  if (dataset == nullptr || filter == nullptr || scheme == nullptr) {
    return Status::InvalidArgument("journal line missing cell key");
  }
  CellRecord r;
  r.key.dataset = *dataset;
  r.key.filter = *filter;
  r.key.scheme = *scheme;
  double num = 0.0;
  if (parser.GetDouble("seed", &num)) r.key.seed = static_cast<int>(num);
  if (const std::string* s = parser.GetString("variant")) r.key.variant = *s;
  parser.GetBool("terminal", &r.terminal);
  if (const std::string* s = parser.GetString("status")) {
    r.status = CellStatusFromName(*s);
  }
  if (const std::string* s = parser.GetString("final_scheme")) {
    r.final_scheme = *s;
  }
  parser.GetBool("fell_back", &r.fell_back);
  if (parser.GetDouble("attempts", &num)) r.attempts = static_cast<int>(num);
  if (const std::string* s = parser.GetString("detail")) r.detail = *s;
  parser.GetDouble("val", &r.val_metric);
  parser.GetDouble("test", &r.test_metric);
  parser.GetDouble("loss", &r.train_loss);
  parser.GetDouble("pre_ms", &r.stats.precompute_ms);
  parser.GetDouble("train_ms", &r.stats.train_ms_per_epoch);
  parser.GetDouble("infer_ms", &r.stats.infer_ms);
  if (parser.GetDouble("ram_bytes", &num)) {
    r.stats.peak_ram_bytes = static_cast<size_t>(num);
  }
  if (parser.GetDouble("accel_bytes", &num)) {
    r.stats.peak_accel_bytes = static_cast<size_t>(num);
  }
  if (parser.GetDouble("threads", &num)) {
    r.stats.threads = static_cast<int>(num);
  }
  if (parser.GetDouble("shards", &num)) {
    r.stats.shards = static_cast<int>(num);
  }
  if (parser.GetDouble("shard_spills", &num)) {
    r.stats.shard_spills = static_cast<int64_t>(num);
  }
  parser.GetDouble("wall_ms", &r.wall_ms);
  for (const auto& [key, raw] : parser.scalars()) {
    if (key.rfind("x_", 0) == 0) {
      r.extras.emplace_back(key.substr(2), std::atof(raw.c_str()));
    }
  }
  return r;
}

Journal::Journal(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  // Replay completed cells, tolerating a torn final line from a crash.
  if (std::FILE* f = std::fopen(path_.c_str(), "r")) {
    std::string line;
    int c = 0;
    while ((c = std::fgetc(f)) != EOF) {
      if (c != '\n') {
        line.push_back(static_cast<char>(c));
        continue;
      }
      if (!line.empty()) {
        auto record = DecodeRecord(line);
        if (record.ok() && record.value().terminal) {
          terminal_[record.value().key.Id()] = record.MoveValue();
          ++replayed_;
        }
      }
      line.clear();
    }
    std::fclose(f);
  }
  file_ = std::fopen(path_.c_str(), "a");
  if (file_ == nullptr) {
    std::fprintf(stderr, "journal: cannot append to %s; journaling disabled\n",
                 path_.c_str());
    path_.clear();
  }
}

Journal::~Journal() {
  if (file_ != nullptr) std::fclose(file_);
}

void Journal::Append(const std::string& bench, const CellRecord& record) {
  if (file_ == nullptr) return;
  if (record.terminal) terminal_[record.key.Id()] = record;
  const std::string line = EncodeRecord(bench, record);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

const CellRecord* Journal::Find(const CellKey& key) const {
  const auto it = terminal_.find(key.Id());
  return it == terminal_.end() ? nullptr : &it->second;
}

}  // namespace sgnn::runtime

#include "runtime/fault_injection.h"

#include <cstdio>
#include <cstdlib>

#include "graph/io.h"
#include "tensor/device.h"

namespace sgnn::runtime {

Result<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault plan entry missing '=': " + entry);
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "accel_nth") {
      plan.accel_alloc_fail_nth = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "accel_prob") {
      plan.accel_alloc_fail_prob = std::atof(value.c_str());
    } else if (key == "io_nth") {
      plan.io_fail_nth = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "io_prob") {
      plan.io_fail_prob = std::atof(value.c_str());
    } else if (key == "seed") {
      plan.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return Status::InvalidArgument("unknown fault plan key: " + key);
    }
  }
  if (plan.accel_alloc_fail_prob < 0.0 || plan.accel_alloc_fail_prob > 1.0 ||
      plan.io_fail_prob < 0.0 || plan.io_fail_prob > 1.0) {
    return Status::InvalidArgument("fault probabilities must be in [0, 1]");
  }
  return plan;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(const FaultPlan& plan) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = plan;
    rng_ = Rng(plan.seed);
    accel_allocs_ = io_ops_ = alloc_faults_ = io_faults_ = 0;
    armed_ = true;
  }
  DeviceTracker::Global().SetAllocFaultHook(
      [this](Device device, size_t /*bytes*/) {
        if (device != Device::kAccel) return false;
        return OnAccelAlloc();
      });
  graph::SetIoFaultHook([this](const char* op, const std::string& path) {
    return OnIo(op, path);
  });
}

bool FaultInjector::ArmFromEnv() {
  const char* env = std::getenv("SPECTRAL_FAULT_PLAN");
  if (env == nullptr || env[0] == '\0') return false;
  auto plan = ParseFaultPlan(env);
  if (!plan.ok()) {
    std::fprintf(stderr, "SPECTRAL_FAULT_PLAN ignored: %s\n",
                 plan.status().ToString().c_str());
    return false;
  }
  Arm(plan.value());
  return true;
}

void FaultInjector::Disarm() {
  DeviceTracker::Global().SetAllocFaultHook(nullptr);
  graph::SetIoFaultHook(nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_;
}

uint64_t FaultInjector::observed_accel_allocs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accel_allocs_;
}

uint64_t FaultInjector::observed_io_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return io_ops_;
}

uint64_t FaultInjector::injected_alloc_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alloc_faults_;
}

uint64_t FaultInjector::injected_io_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return io_faults_;
}

bool FaultInjector::OnAccelAlloc() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_) return false;
  ++accel_allocs_;
  bool fail = plan_.accel_alloc_fail_nth != 0 &&
              accel_allocs_ == plan_.accel_alloc_fail_nth;
  if (!fail && plan_.accel_alloc_fail_prob > 0.0) {
    fail = rng_.Bernoulli(plan_.accel_alloc_fail_prob);
  }
  if (fail) ++alloc_faults_;
  return fail;
}

Status FaultInjector::OnIo(const char* op, const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_) return Status::OK();
  ++io_ops_;
  bool fail = plan_.io_fail_nth != 0 && io_ops_ == plan_.io_fail_nth;
  if (!fail && plan_.io_fail_prob > 0.0) {
    fail = rng_.Bernoulli(plan_.io_fail_prob);
  }
  if (!fail) return Status::OK();
  ++io_faults_;
  return Status::IOError(std::string("injected fault on ") + op + " " + path);
}

}  // namespace sgnn::runtime

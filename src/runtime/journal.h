// JSONL run journal — the crash-resume backbone of the supervised runner.
//
// Every supervised cell (one dataset x filter x scheme x seed configuration
// of a bench grid) appends one self-describing JSON line when it reaches a
// terminal state. Re-opening a journal replays those lines, so a bench
// binary killed mid-grid resumes from the last completed cell instead of
// re-running a multi-hour table, and the replayed records reproduce the
// exact table an uninterrupted run would have printed.

#ifndef SGNN_RUNTIME_JOURNAL_H_
#define SGNN_RUNTIME_JOURNAL_H_

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "models/trainer.h"
#include "tensor/status.h"

namespace sgnn::runtime {

/// Terminal state of one supervised cell; mirrors how the paper's tables
/// mark "(OOM)" entries instead of dropping the row.
enum class CellStatus {
  kOk = 0,
  kOom,       ///< simulated accelerator over capacity (and no fallback)
  kTimeout,   ///< wall-clock deadline exceeded
  kDiverged,  ///< NaN/Inf loss or gradient
  kSkipped,   ///< cell not runnable (bad filter name, FB-only filter, ...)
  kFailed,    ///< any other non-OK status (IO error, precompute failure)
  kShed,      ///< serving admission control rejected the whole cell's load
              ///< (kUnavailable) — the overload analogue of an OOM row
  kShardSpill,  ///< sharded run completed, but one or more shard working
                ///< sets exceeded their accelerator sub-budget and ran
                ///< host-side (docs/SHARDING.md); non-terminal companion
                ///< record of an OK cell
};

/// "OK" / "OOM" / "TIMEOUT" / "DIVERGED" / "SKIPPED" / "FAILED" / "SHED" /
/// "SHARD_SPILL".
const char* CellStatusName(CellStatus status);

/// Parses a CellStatusName string; defaults to kFailed for unknown input.
CellStatus CellStatusFromName(const std::string& name);

/// Identity of one grid cell. `variant` disambiguates grids whose axes go
/// beyond (dataset, filter, scheme, seed) — e.g. "K=6" or "rho=0.25".
struct CellKey {
  CellKey() = default;
  CellKey(std::string dataset, std::string filter, std::string scheme,
          int seed = 1, std::string variant = "")
      : dataset(std::move(dataset)),
        filter(std::move(filter)),
        scheme(std::move(scheme)),
        seed(seed),
        variant(std::move(variant)) {}

  std::string dataset;
  std::string filter;
  std::string scheme;  ///< "fb", "mb", "gp", "iterative", ...
  int seed = 1;
  std::string variant;

  /// Stable journal key "dataset/filter/scheme/seed/variant".
  std::string Id() const;
};

/// One journal line: cell identity plus everything a bench needs to rebuild
/// its table row without re-running the cell.
struct CellRecord {
  CellKey key;
  CellStatus status = CellStatus::kOk;
  std::string detail;        ///< error message for non-OK cells
  std::string final_scheme;  ///< scheme that produced the result
  bool fell_back = false;    ///< FB OOM degraded to the MB scheme
  int attempts = 1;
  /// False for intermediate attempt records (e.g. the FB OOM that precedes
  /// an MB fallback); resume skips a cell only once a terminal record
  /// exists.
  bool terminal = true;

  double val_metric = 0.0;
  double test_metric = 0.0;
  double train_loss = 0.0;
  models::StageStats stats;
  double wall_ms = 0.0;
  /// Bench-specific derived scalars (e.g. silhouette score, degree-gap)
  /// journaled as "x_<name>" so resumed cells can rebuild exotic columns.
  std::vector<std::pair<std::string, double>> extras;

  bool ok() const { return status == CellStatus::kOk; }
  /// Value of an extra by name, or `fallback` when absent.
  double Extra(const std::string& name, double fallback = 0.0) const;
};

/// Serializes a record as one JSON object (no trailing newline).
std::string EncodeRecord(const std::string& bench, const CellRecord& record);

/// Parses a journal line; returns InvalidArgument on malformed input.
[[nodiscard]] Result<CellRecord> DecodeRecord(const std::string& line);

/// Append-only JSONL journal with replay-on-open.
class Journal {
 public:
  /// A journal with an empty path is disabled: Append is a no-op and Find
  /// always misses.
  explicit Journal(std::string path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Appends one record and flushes, so a SIGKILL loses at most the cell in
  /// flight. Malformed lines already in the file are skipped on load.
  void Append(const std::string& bench, const CellRecord& record);

  /// Latest *terminal* record for the cell, or nullptr.
  const CellRecord* Find(const CellKey& key) const;

  /// Number of terminal records replayed from disk at open.
  size_t replayed() const { return replayed_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::map<std::string, CellRecord> terminal_;
  size_t replayed_ = 0;
};

}  // namespace sgnn::runtime

#endif  // SGNN_RUNTIME_JOURNAL_H_
